"""Wall-clock benchmark: serial ``run_local`` vs multiprocess ``run_parallel``.

Unlike the figure benchmarks (which measure *simulated* time on the
virtual cluster), this suite measures real elapsed seconds on real OS
processes — the backend the paper's speedup claims ultimately rest on.
Each workload runs once on the serial reference executor and once per
requested worker count on the multiprocess backend; the suite records
speedups next to ``cpu_count`` so a 1-core container's honest ~1×
numbers are never mistaken for a parallelism regression, and it verifies
on every run that the parallel result is record-for-record identical to
the serial one and that each worker deserialized its static partitions
exactly once (§3.2's static-data residency).

Beyond wall time, every parallel point records the mesh's data-plane
counters — ``records_sent``, ``batches_sent``, ``manifest_frames``,
``bytes_pickled`` — next to ``dense_batches``, the message count the
pre-manifest dense protocol (every peer, every phase, every iteration)
would have shipped for the same run; and the phase-level profiler's
``phase_seconds`` wall-time split (map, combine, serialize, deserialize,
send, wait, reduce, report — and now ``kernel``, the columnar compute
phase), aggregated into the JSON's top-level ``phase_breakdown``
section.  The counters are deterministic for a given workload (seeded
builders, pinned pickle protocol), which is what lets CI gate on them:
:func:`compare_counters` fails the bench leg if any counter regresses
against the committed ``BENCH_PR6.json`` baseline, while wall-clock
numbers stay informational.

Each record-path workload now has a ``<name>-kernel`` twin that runs the
same seeded data through the columnar :class:`~repro.imapreduce.Kernel`
path (PR6's tentpole).  The suite cross-links every kernel row to its
record twin: ``speedup_vs_record`` is the serial record time over the
serial kernel time, and ``kernel_matches_record`` verifies the two final
states agree (record-identical for ``min`` merges, within the float
tolerance for vectorized ``sum`` merges).  ``compare_counters`` also
gates the headline acceptance number — a full-size run must keep
``pagerank-kernel`` and ``kmeans-kernel`` at or above
:data:`KERNEL_SPEEDUP_FLOOR` times the record path.

The fault-tolerance PR adds a ``checkpoint_overhead`` section: the same
workload timed with and without durable checkpoints every
:data:`CHECKPOINT_EVERY` iterations (unfaulted — the cost of insurance,
not of recovery), with the spool counters (``ckpt_writes``,
``ckpt_bytes``) and the profiler's ``checkpoint`` phase next to it.
``compare_counters`` gates the overhead at
:data:`CHECKPOINT_OVERHEAD_CEILING` percent on full-size runs and
verifies checkpointing perturbed neither the result nor the data-plane
counters (heartbeat and checkpoint frames live outside ``ship()``).

``run_suite`` writes the JSON trajectory consumed by CI (uploaded as the
``BENCH_PR6.json`` artifact) and by ``repro bench``; ``workloads`` /
``backend_only`` filters let one algorithm be iterated on alone.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass
from typing import Any, Callable

from ..algorithms import jacobi, kmeans, pagerank, sssp
from ..common.serialization import sizeof_value
from ..data.lastfm import load_lastfm
from ..graph.generators import pagerank_graph, sssp_graph
from ..imapreduce import (
    run_accum_local,
    run_accum_parallel,
    run_local,
    run_parallel,
)

__all__ = [
    "WallclockCase",
    "build_cases",
    "available_workloads",
    "build_backend_workload",
    "build_accum_backend_workload",
    "time_case",
    "dense_batches",
    "sizeof_microbench",
    "hotpath_microbench",
    "run_suite",
    "checkpoint_overhead",
    "async_convergence",
    "incremental_refresh",
    "compare_counters",
    "format_phase_breakdown",
    "load_history",
    "format_history",
    "DEFAULT_WORKERS",
    "COUNTERS",
    "KERNEL_SPEEDUP_FLOOR",
    "CHECKPOINT_OVERHEAD_CEILING",
]

#: Data-plane counters recorded per parallel point and gated by CI.
COUNTERS = ("records_sent", "batches_sent", "manifest_frames", "bytes_pickled")

#: Acceptance floor for the columnar path: on a full-size run, the
#: serial kernel must beat the serial record path by at least this
#: factor on the gated workloads.  ``compare_counters`` enforces it.
KERNEL_SPEEDUP_FLOOR = 5.0

#: Kernel rows whose ``speedup_vs_record`` the floor applies to.
GATED_KERNEL_ROWS = ("pagerank-kernel", "kmeans-kernel")

#: Acceptance ceiling for fault tolerance: an unfaulted run with durable
#: checkpoints every :data:`CHECKPOINT_EVERY` iterations may cost at
#: most this percentage of wall clock over the same run without them.
#: ``compare_counters`` enforces it on full-size runs.
CHECKPOINT_OVERHEAD_CEILING = 5.0
CHECKPOINT_EVERY = 5

STATE = "/bench/state"
STATIC = "/bench/static"
OUT = "/bench/out"

#: Worker counts the acceptance trajectory tracks: serial-equivalent,
#: one per core on a 2-core runner, one per core on a 4-core runner.
DEFAULT_WORKERS = (1, 2, 4)


@dataclass
class WallclockCase:
    """One benchmarked workload: a fresh (job, state, static) per call."""

    name: str
    num_pairs: int
    build: Callable[[], tuple[Any, list, dict]]
    #: For ``<name>-kernel`` twins: the record-path row this case
    #: accelerates.  ``run_suite`` cross-links the two to compute
    #: ``speedup_vs_record`` and the kernel/record state comparison.
    kernel_of: str | None = None


def build_cases(quick: bool = False) -> list[WallclockCase]:
    """The four record-path workloads plus their kernel twins, at honest
    (or CI-smoke) sizes.  Twins share the record case's seeded data, so
    their final states are comparable."""
    if quick:
        pr_nodes, sssp_nodes, users, iters = 60, 60, 40, 3
        artists, k, jac_n = 10, 4, 40
    else:
        # Sized so the serial run takes seconds, not milliseconds: the
        # per-iteration compute must dominate process-mesh overhead, or
        # speedups would measure pickling, not the backend.
        pr_nodes, sssp_nodes, users, iters = 30_000, 30_000, 8_000, 8
        artists, k, jac_n = 60, 8, 800

    def _pagerank(use_kernel: bool = False):
        graph = pagerank_graph(pr_nodes, seed=42)
        job = pagerank.build_imr_job(
            pr_nodes, state_path=STATE, static_path=STATIC, output_path=OUT,
            max_iterations=iters, num_pairs=8, combiner=True,
            use_kernel=use_kernel,
        )
        return job, pagerank.initial_state(graph), {
            STATIC: pagerank.static_records(graph)
        }

    def _sssp(use_kernel: bool = False):
        graph = sssp_graph(sssp_nodes, seed=42)
        job = sssp.build_imr_job(
            state_path=STATE, static_path=STATIC, output_path=OUT,
            max_iterations=iters, num_pairs=8, combiner=True,
            use_kernel=use_kernel,
        )
        return job, sssp.initial_state(graph, source=0), {
            STATIC: sssp.static_records(graph)
        }

    def _kmeans(use_kernel: bool = False):
        data = load_lastfm(num_users=users, num_artists=artists,
                           num_tastes=min(4, k), seed=42)
        job = kmeans.build_imr_job(
            state_path=STATE, static_path=STATIC, output_path=OUT,
            max_iterations=max(3, iters - 2), num_pairs=4,
            use_kernel=use_kernel,
            num_artists=artists if use_kernel else None,
        )
        return job, kmeans.initial_centroids(data, k, seed=42), {
            STATIC: data.user_records()
        }

    def _jacobi(use_kernel: bool = False):
        # The record map rebuilds a dict of the whole broadcast vector
        # per row — the O(n²) hot spot the kernel's cached column index
        # eliminates (see JacobiKernel).
        a, b = jacobi.make_system(jac_n, density=0.05, seed=42)
        job = jacobi.build_imr_job(
            state_path=STATE, static_path=STATIC, output_path=OUT,
            max_iterations=iters, num_pairs=4, use_kernel=use_kernel,
        )
        return job, jacobi.initial_state(jac_n), {
            STATIC: jacobi.system_to_static_records(a, b)
        }

    def _kernel(build):
        return lambda: build(use_kernel=True)

    return [
        WallclockCase("pagerank", 8, _pagerank),
        WallclockCase("sssp", 8, _sssp),
        WallclockCase("kmeans", 4, _kmeans),
        WallclockCase("jacobi", 4, _jacobi),
        WallclockCase("pagerank-kernel", 8, _kernel(_pagerank), kernel_of="pagerank"),
        WallclockCase("sssp-kernel", 8, _kernel(_sssp), kernel_of="sssp"),
        WallclockCase("kmeans-kernel", 4, _kernel(_kmeans), kernel_of="kmeans"),
        WallclockCase("jacobi-kernel", 4, _kernel(_jacobi), kernel_of="jacobi"),
    ]


def available_workloads() -> list[str]:
    """Names ``run_suite``'s ``workloads`` filter accepts."""
    return [case.name for case in build_cases(quick=True)]


def build_backend_workload(
    algorithm: str,
    dataset: str,
    *,
    iterations: int = 10,
    num_pairs: int = 8,
    combiner: bool = False,
    seed: int = 0,
) -> tuple[Any, list, dict, int]:
    """(job, state, static_map, num_pairs) for ``repro run`` on the real
    backends — same datasets the simulated engine uses."""
    from ..common import stable_seed
    from ..data import load_graph

    if algorithm == "sssp":
        graph = load_graph(dataset)
        job = sssp.build_imr_job(
            state_path=STATE, static_path=STATIC, output_path=OUT,
            max_iterations=iterations, num_pairs=num_pairs, combiner=combiner,
        )
        return (job, sssp.initial_state(graph, source=0),
                {STATIC: sssp.static_records(graph)}, num_pairs)
    if algorithm == "pagerank":
        graph = load_graph(dataset)
        job = pagerank.build_imr_job(
            graph.num_nodes, state_path=STATE, static_path=STATIC,
            output_path=OUT, max_iterations=iterations, num_pairs=num_pairs,
            combiner=combiner,
        )
        return (job, pagerank.initial_state(graph),
                {STATIC: pagerank.static_records(graph)}, num_pairs)
    if algorithm == "kmeans":
        data = load_lastfm(num_users=800, num_artists=40, num_tastes=4,
                           seed=stable_seed(seed, "lastfm") % (2**31)
                           if seed else 1)
        centroids = kmeans.initial_centroids(
            data, 4,
            seed=stable_seed(seed, "centroids") % (2**31) if seed else 1,
        )
        job = kmeans.build_imr_job(
            state_path=STATE, static_path=STATIC, output_path=OUT,
            max_iterations=iterations, num_pairs=min(4, num_pairs),
            combiner=combiner,
        )
        return job, centroids, {STATIC: data.user_records()}, min(4, num_pairs)
    if algorithm == "matrixpower":
        from . import workloads

        matrix = workloads._matrix_for(dataset, seed)
        job = matrixpower.build_imr_job(
            state_path=STATE, static_path=STATIC, output_path=OUT,
            max_iterations=iterations, num_pairs=num_pairs,
        )
        return (job, matrixpower.matrix_to_state_records(matrix),
                {STATIC: matrixpower.matrix_to_column_records(matrix)},
                num_pairs)
    raise ValueError(f"unknown algorithm {algorithm!r}")


def build_accum_backend_workload(
    algorithm: str,
    dataset: str,
    *,
    num_pairs: int = 8,
    max_rounds: int = 100_000,
) -> tuple[Any, list, dict, int]:
    """(job, initial_deltas, static_map, num_pairs) for ``repro run
    --mode sync|async`` — the accumulative (Maiter) formulation of the
    workload, on the same datasets the classic iterative path uses."""
    from ..data import load_graph

    if algorithm == "pagerank":
        graph = load_graph(dataset)
        job = pagerank.build_accum_job(
            state_path=STATE, static_path=STATIC, output_path=OUT,
            threshold=ACCUM_PAGERANK_THRESHOLD, max_rounds=max_rounds,
            num_pairs=num_pairs,
        )
        return (job, pagerank.accum_initial_deltas(graph.num_nodes,
                                                   pagerank.DAMPING),
                {STATIC: pagerank.static_records(graph)}, num_pairs)
    if algorithm == "sssp":
        graph = load_graph(dataset)
        job = sssp.build_accum_job(
            state_path=STATE, static_path=STATIC, output_path=OUT,
            max_rounds=max_rounds, num_pairs=num_pairs,
        )
        return (job, sssp.accum_initial_deltas(0),
                {STATIC: sssp.static_records(graph)}, num_pairs)
    raise ValueError(
        f"no accumulative formulation for {algorithm!r} "
        "(--mode sync/async supports sssp and pagerank)"
    )


def dense_batches(job, iterations: int, num_workers: int) -> int:
    """Batches the PR4 dense protocol shipped for the same run: every
    worker messaged every peer on every phase of every iteration (shuffle
    + per-phase repartition + all-gather broadcast), empty or not."""
    if num_workers <= 1:
        return 0
    edges = num_workers * (num_workers - 1)
    per_iter = 0
    last = len(job.phases) - 1
    for index, phase in enumerate(job.phases):
        per_iter += edges  # shuffle
        if index != last:
            per_iter += edges  # repartition
        if phase.mapping == "one2all":
            per_iter += edges  # all-gather broadcast
    return per_iter * iterations


def time_case(
    case: WallclockCase,
    workers: tuple[int, ...] = DEFAULT_WORKERS,
    repeats: int = 2,
) -> tuple[dict, Any, Any]:
    """Serial vs parallel timings for one workload (best of ``repeats``).

    Returns the JSON row, the serial result and the job — ``run_suite``
    uses the latter two to compare a kernel twin's state against its
    record row.  An empty ``workers`` tuple (``--backend-only serial``)
    skips the multiprocess backend entirely; the serial run always
    happens, both for its timing and as the correctness reference.
    """
    job, state, static_map = case.build()

    serial = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        ref = run_local(job, state, static_map, num_pairs=case.num_pairs)
        serial = min(serial, time.perf_counter() - started)

    row: dict[str, Any] = {
        "name": case.name,
        "num_pairs": case.num_pairs,
        "iterations": ref.iterations_run,
        "serial_seconds": round(serial, 4),
        "parallel": [],
        "record_identical": True,
    }
    for w in workers:
        best = float("inf")
        par = None
        for _ in range(repeats):
            started = time.perf_counter()
            par = run_parallel(job, state, static_map,
                               num_pairs=case.num_pairs, num_workers=w)
            best = min(best, time.perf_counter() - started)
        assert par is not None
        from ..testing.oracles import records_identical

        if (not records_identical(par.state, ref.state)
                or par.iterations_run != ref.iterations_run):
            row["record_identical"] = False
        if par.static_loads != par.num_workers:
            raise AssertionError(
                f"{case.name}: static loaded {par.static_loads} times for "
                f"{par.num_workers} workers — static residency broken"
            )
        row["parallel"].append({
            "workers": par.num_workers,
            "seconds": round(best, 4),
            "speedup": round(serial / best, 3) if best > 0 else None,
            "static_loads": par.static_loads,
            # Data-plane counters are deterministic per (workload,
            # workers): seeded builders + pinned frame protocol.  CI
            # gates on these, not on wall time.
            "counters": {name: par.counter(name) for name in COUNTERS},
            "dense_batches": dense_batches(
                job, par.iterations_run, par.num_workers
            ),
            "phase_seconds": par.phase_breakdown(),
        })
    return row, ref, job


def sizeof_microbench(calls: int = 200_000) -> dict:
    """The satellite win: memoized ``sizeof_value`` vs the uncached path.

    The probe set mirrors shuffle traffic — small ints, floats and
    short key/value tuples repeat endlessly, which is exactly what the
    memo table captures.
    """
    from ..common import serialization

    probes = [
        (i % 64, float(i % 64) * 0.5) for i in range(256)
    ] + [("node", i % 32, 1.5) for i in range(128)]
    n = max(1, calls // len(probes))

    started = time.perf_counter()
    for _ in range(n):
        for p in probes:
            serialization._sizeof_uncached(p)
    uncached = time.perf_counter() - started

    sizeof_value(probes[0])  # warm the memo
    started = time.perf_counter()
    for _ in range(n):
        for p in probes:
            sizeof_value(p)
    memoized = time.perf_counter() - started

    return {
        "calls": n * len(probes),
        "uncached_seconds": round(uncached, 4),
        "memoized_seconds": round(memoized, 4),
        "speedup": round(uncached / memoized, 2) if memoized > 0 else None,
    }


def hotpath_microbench(groups: int = 2_000, repeats: int = 20) -> dict:
    """PR6's satellite hot-path wins, measured against the old code.

    ``group_by_key``: the old implementation always sorted through a
    ``(type_name, key)`` tuple built per item by a lambda; the new fast
    path sorts natively and only falls back on a ``TypeError``.  The
    probe shape mirrors a combiner's input: small int keys, a few values
    each.

    Combiner context: ``map_pair`` used to allocate a fresh ``Context``
    per destination partition; it now reuses one, draining it with
    ``take()``.  The probe replays both allocation patterns over the
    same emission stream, shaped like the worst case for the old code —
    many partitions with few emissions each, where the per-partition
    allocation is the dominant cost.
    """
    from ..common.records import _sort_key, group_by_key
    from ..mapreduce.api import Context

    pairs = [(i % groups, float(i)) for i in range(groups * 4)]

    def _old_group_by_key(ps):
        buckets: dict[Any, list[Any]] = {}
        for k, v in ps:
            buckets.setdefault(k, []).append(v)
        return sorted(buckets.items(), key=lambda item: _sort_key(item[0]))

    def _best_of(fn):
        # Best-of-N: min is far more noise-robust than a summed total
        # on a shared/1-core host.
        best = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - started)
        return best

    old_group = _best_of(lambda: _old_group_by_key(pairs))
    new_group = _best_of(lambda: group_by_key(pairs))

    partitions = [[(k, k * 0.5) for k in range(p, p + 3)] for p in range(1024)]

    def _per_partition_ctx():
        emitted = []
        for part in partitions:
            cctx = Context()
            for k, v in part:
                cctx.emit(k, v)
            emitted.extend(cctx.take())

    def _reused_ctx():
        emitted = []
        cctx = Context()
        for part in partitions:
            for k, v in part:
                cctx.emit(k, v)
            emitted.extend(cctx.take())

    old_ctx = _best_of(_per_partition_ctx)
    new_ctx = _best_of(_reused_ctx)

    return {
        "group_by_key": {
            "pairs": len(pairs),
            "old_seconds": round(old_group, 5),
            "new_seconds": round(new_group, 5),
            "speedup": round(old_group / new_group, 2) if new_group else None,
        },
        "combiner_context": {
            "emissions": sum(len(p) for p in partitions),
            "per_partition_seconds": round(old_ctx, 5),
            "reused_seconds": round(new_ctx, 5),
            "speedup": round(old_ctx / new_ctx, 2) if new_ctx else None,
        },
    }


def checkpoint_overhead(
    quick: bool = False,
    workers: int = 2,
    checkpoint_every: int = CHECKPOINT_EVERY,
    repeats: int | None = None,
) -> dict:
    """Unfaulted checkpoint cost: the same workload timed with and
    without durable per-pair checkpoints (interleaved trials).

    Checkpoints ride the iteration barrier — each worker spools its
    pair states after the report, the coordinator commits a manifest —
    so their cost is pure overhead in a run that never needs them.
    Two numbers come out of the A/B:

    ``measured_overhead_pct``
        Best-of-N wall clock, checkpointed over plain.  Honest but
        hostage to the host: on a shared runner the end-to-end spread
        of two ~3 s runs (±20 % observed) dwarfs the true cost, so
        this stays informational.

    ``overhead_pct`` (gated)
        The directly-attributed checkpoint bill as a percentage of the
        plain run's wall clock: the workers' ``checkpoint`` profiler
        phase (encode + write + fsync, *summed* across workers that
        actually overlap — a deliberate over-count) plus the
        coordinator's manifest-commit seconds.  Deterministic work,
        stable across runs; :func:`compare_counters` gates it at
        :data:`CHECKPOINT_OVERHEAD_CEILING` on full-size runs.
    """
    from ..testing.oracles import records_identical

    case = next(c for c in build_cases(quick=quick) if c.name == "pagerank")
    job, state, static_map = case.build()
    if repeats is None:
        repeats = 1 if quick else 3

    def _run(**kwargs):
        started = time.perf_counter()
        result = run_parallel(
            job, state, static_map,
            num_pairs=case.num_pairs, num_workers=workers, **kwargs,
        )
        return time.perf_counter() - started, result

    plain_seconds = ckpt_seconds = float("inf")
    plain = ckpt = None
    for _ in range(repeats):  # interleaved: drift hits both arms alike
        seconds, plain = _run()
        plain_seconds = min(plain_seconds, seconds)
        seconds, ckpt = _run(checkpoint_every=checkpoint_every)
        ckpt_seconds = min(ckpt_seconds, seconds)

    phase = ckpt.phase_breakdown().get("checkpoint", 0.0)
    attributed = phase + ckpt.commit_seconds
    return {
        "workload": case.name,
        "workers": plain.num_workers,
        "checkpoint_every": checkpoint_every,
        "iterations": ckpt.iterations_run,
        "plain_seconds": round(plain_seconds, 4),
        "checkpointed_seconds": round(ckpt_seconds, 4),
        "measured_overhead_pct": round(
            (ckpt_seconds - plain_seconds) / plain_seconds * 100.0, 2
        ) if plain_seconds > 0 else None,
        "overhead_pct": round(attributed / plain_seconds * 100.0, 2)
        if plain_seconds > 0 else None,
        "checkpoints": list(ckpt.checkpoints),
        "ckpt_writes": ckpt.counter("ckpt_writes"),
        "ckpt_bytes": ckpt.counter("ckpt_bytes"),
        "checkpoint_phase_seconds": round(phase, 4),
        "commit_seconds": round(ckpt.commit_seconds, 4),
        # Checkpointing must not perturb the result or the data plane.
        "record_identical": records_identical(plain.state, ckpt.state),
        "dataplane_counters_identical": all(
            plain.counter(name) == ckpt.counter(name) for name in COUNTERS
        ),
    }


#: Workloads with an accumulative (Maiter-mode) formulation; the
#: ``async_convergence`` section runs their sync/async A/B.
ACCUM_WORKLOADS = ("pagerank", "sssp")

#: Pending-mass threshold for the pagerank accumulative A/B — both modes
#: stop at the same accumulated-progress line, which is what makes the
#: shipped-data comparison a fair fight.
ACCUM_PAGERANK_THRESHOLD = 1e-9

#: Trace rows kept per convergence curve (evenly subsampled, last row
#: always kept — it carries the final pending mass).
CURVE_POINTS = 64


def _subsample_curve(trace: list[dict]) -> list[dict]:
    if len(trace) <= CURVE_POINTS:
        return list(trace)
    step = (len(trace) - 1) / (CURVE_POINTS - 1)
    return [trace[round(i * step)] for i in range(CURVE_POINTS)]


def _build_accum_case(name: str, quick: bool):
    """(job, initial_deltas, static_map, exact, num_pairs) for the A/B."""
    # The quick size is larger than the record-path quick size on
    # purpose: below ~300 nodes the async mode's extra rounds cost more
    # frame overhead than the skipped deltas save, and the
    # strictly-fewer gates (which CI replays with --quick) would trip on
    # framing noise rather than the scheduling property under test.
    n = 300 if quick else 2_000
    if name == "pagerank":
        graph = pagerank_graph(n, seed=42)
        job = pagerank.build_accum_job(
            state_path=STATE, static_path=STATIC, output_path=OUT,
            threshold=ACCUM_PAGERANK_THRESHOLD, max_rounds=100_000,
            num_pairs=8,
        )
        deltas = pagerank.accum_initial_deltas(n, pagerank.DAMPING)
        static_map = {STATIC: pagerank.static_records(graph)}
        exact = False
    elif name == "sssp":
        graph = sssp_graph(n, seed=42)
        job = sssp.build_accum_job(
            state_path=STATE, static_path=STATIC, output_path=OUT,
            max_rounds=100_000, num_pairs=8,
        )
        deltas = sssp.accum_initial_deltas(0)
        static_map = {STATIC: sssp.static_records(graph)}
        exact = True
    else:
        raise ValueError(f"no accumulative formulation for {name!r}")
    return job, deltas, static_map, exact, 8


#: Edge-churn fractions for the incremental-refresh speedup-vs-delta
#: curve.  The strictly-fewer gates apply at fractions at or below
#: :data:`GATED_CHURN` — at 10% churn a warm refresh legitimately
#: approaches cold-rerun work, so that point stays informational.
CHURN_LEVELS = (0.001, 0.01, 0.1)
GATED_CHURN = 0.01


def incremental_refresh(quick: bool = False, log=None,
                        workloads=None) -> dict:
    """The i2MapReduce A/B: warm refresh from memoized state vs cold
    rerun, across :data:`CHURN_LEVELS` edge-churn fractions.

    For each accumulative workload, one converged base run supplies the
    memoized state; each churn level synthesizes a seeded
    :class:`~repro.imapreduce.DataDelta` (improvement-only for the
    ``min`` algebra — new/faster roads — arbitrary insert+delete for
    pagerank), refreshes incrementally (change propagation + warm
    start), and reruns cold on the mutated input.  Each level records
    both runs' rounds/updates/shipped-delta counters and wall times —
    the speedup-vs-delta-size curve — plus the gates
    :func:`compare_counters` enforces at small churn: the warm run must
    recompute strictly fewer pairs and ship strictly fewer delta
    records than the cold rerun, and the two fixpoints must agree
    (bit-exact for ``min``, threshold-bounded for ``+``).
    """
    from ..imapreduce import (
        patch_static_table,
        random_edge_churn,
        run_incremental_accum,
    )
    from ..imapreduce.incremental import ADJACENCY_KINDS, cold_initial_deltas
    from ..testing.oracles import records_identical, states_match

    if workloads is None:
        names = ACCUM_WORKLOADS
    else:
        names = tuple(n for n in ACCUM_WORKLOADS if n in workloads)
    section: dict[str, Any] = {
        "churn_levels": list(CHURN_LEVELS),
        "gated_churn": GATED_CHURN,
        "workloads": [],
    }
    for name in names:
        job, deltas, static_map, exact, num_pairs = _build_accum_case(
            name, quick
        )
        table = dict(static_map[STATIC])
        num_edges = sum(len(row) for row in table.values())
        plan_kwargs = (
            {"source": 0} if name == "sssp"
            else {"damping": pagerank.DAMPING}
        )
        base = run_accum_local(
            job, deltas, static_map, num_pairs=num_pairs, mode="sync"
        )
        row: dict[str, Any] = {
            "name": f"{name}-refresh",
            "algebra": job.accumulator.name,
            "num_pairs": num_pairs,
            "num_edges": num_edges,
            "levels": [],
        }
        for churn in CHURN_LEVELS:
            edits = max(2, round(churn * num_edges))
            insert = edits // 2
            delta = random_edge_churn(
                table, name, insert=insert, delete=edits - insert,
                seed=int(churn * 1_000_000) + 13,
                monotone=name == "sssp",
            )
            started = time.perf_counter()
            warm = run_incremental_accum(
                job, name, delta, base.state, {STATIC: dict(table)},
                num_pairs=num_pairs, mode="async", **plan_kwargs,
            )
            warm_seconds = time.perf_counter() - started
            mutated = dict(table)
            patch_static_table(mutated, delta, ADJACENCY_KINDS[name])
            started = time.perf_counter()
            cold = run_accum_local(
                job, cold_initial_deltas(name, mutated, **plan_kwargs),
                {STATIC: mutated}, num_pairs=num_pairs, mode="async",
            )
            cold_seconds = time.perf_counter() - started
            if exact:
                match = records_identical(warm.state, cold.state)
            else:
                match = not states_match(warm.state, cold.state)
            level = {
                "churn": churn,
                "delta_size": delta.size,
                "frontier_keys": warm.counters["incremental"][
                    "frontier_keys"
                ],
                "warm": {
                    "rounds": warm.rounds,
                    "updates_processed": warm.updates_processed,
                    "deltas_shipped": warm.deltas_shipped,
                    "seconds": round(warm_seconds, 4),
                },
                "cold": {
                    "rounds": cold.rounds,
                    "updates_processed": cold.updates_processed,
                    "deltas_shipped": cold.deltas_shipped,
                    "seconds": round(cold_seconds, 4),
                },
                "update_speedup": (
                    round(cold.updates_processed / warm.updates_processed, 2)
                    if warm.updates_processed else None
                ),
                "warm_fewer_updates": (
                    warm.updates_processed < cold.updates_processed
                ),
                "warm_fewer_shipped": (
                    warm.deltas_shipped < cold.deltas_shipped
                ),
                "states_match": match,
            }
            row["levels"].append(level)
            if log:
                log(
                    f"{row['name']}@{churn:.1%}: delta {delta.size} edits, "
                    f"warm {warm.updates_processed:,} updates / "
                    f"{warm.deltas_shipped:,} shipped vs cold "
                    f"{cold.updates_processed:,} / "
                    f"{cold.deltas_shipped:,} "
                    f"({level['update_speedup']}x fewer updates, "
                    f"match={match})"
                )
        section["workloads"].append(row)
    return section


def async_convergence(quick: bool = False, workers: int = 2,
                      workloads=None) -> dict:
    """The Maiter-mode A/B: the same accumulative job run synchronously
    (drain every pending delta each round) and asynchronously (drain the
    top-priority fraction), both stopping at the same pending-mass
    threshold.

    Each mode contributes a convergence-vs-work curve (pending mass and
    cumulative updates/emitted/shipped per round, subsampled to
    :data:`CURVE_POINTS`) from the serial run, plus the multiprocess
    backend's data-plane counters at ``workers`` workers.  The headline
    acceptance gates, enforced by :func:`compare_counters`:

    * async ships strictly fewer cross-pair delta records *and* strictly
      fewer mesh records/bytes than sync to the same threshold;
    * both parallel runs reproduce their serial twin record for record;
    * the async fixpoint matches the sync fixpoint (bit-exact for the
      ``min`` algebra, within the differential tolerance for ``+``).
    """
    from ..testing.oracles import records_identical, states_match

    if workloads is None:
        names = ACCUM_WORKLOADS
    else:
        names = tuple(n for n in ACCUM_WORKLOADS if n in workloads)
    section: dict[str, Any] = {"workers": workers, "workloads": []}
    for name in names:
        job, deltas, static_map, exact, num_pairs = _build_accum_case(
            name, quick
        )
        row: dict[str, Any] = {
            "name": f"{name}-accum",
            "num_pairs": num_pairs,
            "threshold": job.threshold,
            "algebra": job.accumulator.name,
            "modes": {},
        }
        serials: dict[str, Any] = {}
        for mode in ("sync", "async"):
            started = time.perf_counter()
            serial = run_accum_local(
                job, deltas, static_map, num_pairs=num_pairs, mode=mode,
                keep_trace=True,
            )
            serial_seconds = time.perf_counter() - started
            serials[mode] = serial
            started = time.perf_counter()
            par = run_accum_parallel(
                job, deltas, static_map, num_pairs=num_pairs,
                num_workers=workers, mode=mode,
            )
            parallel_seconds = time.perf_counter() - started
            row["modes"][mode] = {
                "rounds": serial.rounds,
                "terminated_by": serial.terminated_by,
                "final_pending_mass": serial.pending_mass,
                "updates_processed": serial.updates_processed,
                "deltas_emitted": serial.deltas_emitted,
                "deltas_shipped": serial.deltas_shipped,
                "curve": _subsample_curve(serial.trace),
                "serial_seconds": round(serial_seconds, 4),
                "parallel_seconds": round(parallel_seconds, 4),
                "counters": {
                    counter: par.counter(counter) for counter in COUNTERS
                },
                "parallel_identical": records_identical(
                    par.state, serial.state
                ),
            }
        sync_mode = row["modes"]["sync"]
        async_mode = row["modes"]["async"]
        row["async_fewer_delta_records"] = (
            async_mode["deltas_shipped"] < sync_mode["deltas_shipped"]
        )
        row["async_fewer_mesh_records"] = (
            async_mode["counters"]["records_sent"]
            < sync_mode["counters"]["records_sent"]
        )
        row["async_fewer_mesh_bytes"] = (
            async_mode["counters"]["bytes_pickled"]
            < sync_mode["counters"]["bytes_pickled"]
        )
        if exact:
            row["states_match"] = records_identical(
                serials["async"].state, serials["sync"].state
            )
        else:
            row["states_match"] = not states_match(
                serials["async"].state, serials["sync"].state
            )
        section["workloads"].append(row)
    return section


def run_suite(
    out_path: str | None = "BENCH_PR10.json",
    workers: tuple[int, ...] = DEFAULT_WORKERS,
    quick: bool = False,
    log: Callable[[str], None] | None = None,
    workloads: list[str] | None = None,
    backend_only: str | None = None,
) -> dict:
    """Run the selected cases plus the micro-benchmarks; write JSON.

    ``workloads`` restricts the suite to the named cases (unknown names
    raise ``ValueError`` listing the available set); ``backend_only``
    is ``"serial"`` (skip the multiprocess backend) or ``"parallel"``
    (time only the backend — the serial reference still runs once for
    the identity check, with a single repeat).
    """
    cases = build_cases(quick=quick)
    if workloads is not None:
        known = [case.name for case in cases]
        unknown = [name for name in workloads if name not in known]
        if unknown:
            raise ValueError(
                f"unknown workload(s): {', '.join(unknown)}; "
                f"available: {', '.join(known)}"
            )
        cases = [case for case in cases if case.name in workloads]
    if backend_only not in (None, "serial", "parallel"):
        raise ValueError(
            f"backend_only must be 'serial' or 'parallel', "
            f"not {backend_only!r}"
        )
    case_workers = () if backend_only == "serial" else workers
    repeats = 1 if quick or backend_only == "parallel" else 2

    results = {
        "suite": "wallclock",
        "meta": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
            "quick": quick,
            "workers": list(case_workers),
            "backend_only": backend_only,
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        },
        "workloads": [],
        "phase_breakdown": {},
        "sizeof_microbench": sizeof_microbench(
            calls=20_000 if quick else 200_000
        ),
        "hotpath_microbench": hotpath_microbench(
            groups=200 if quick else 2_000, repeats=5 if quick else 20
        ),
    }
    from ..testing.oracles import records_identical, states_match

    rows: dict[str, dict] = {}
    refs: dict[str, Any] = {}
    for case in cases:
        row, ref, job = time_case(case, workers=case_workers, repeats=repeats)
        rows[case.name] = row
        refs[case.name] = ref
        if case.kernel_of is not None and case.kernel_of in rows:
            base = rows[case.kernel_of]
            row["kernel_of"] = case.kernel_of
            row["speedup_vs_record"] = (
                round(base["serial_seconds"] / row["serial_seconds"], 2)
                if row["serial_seconds"] > 0 else None
            )
            # ``min`` merges replay the record path's float ops exactly;
            # ``sum`` merges reorder additions, so compare in tolerance.
            record_state = refs[case.kernel_of].state
            if job.kernel.merge == "min":
                row["kernel_matches_record"] = records_identical(
                    ref.state, record_state
                )
            else:
                row["kernel_matches_record"] = not states_match(
                    ref.state, record_state
                )
        results["workloads"].append(row)
        results["phase_breakdown"][row["name"]] = {
            str(point["workers"]): point["phase_seconds"]
            for point in row["parallel"]
        }
        if log:
            speedups = ", ".join(
                f"{p['workers']}w={p['speedup']}x" for p in row["parallel"]
            )
            vs = (
                f"; {row['speedup_vs_record']}x vs record path "
                f"(matches={row['kernel_matches_record']})"
                if "speedup_vs_record" in row else ""
            )
            log(
                f"{row['name']}: serial {row['serial_seconds']}s; {speedups}"
                f" (identical={row['record_identical']}){vs}"
            )
    # The overhead A/B reruns pagerank, so it honors the workload
    # filter (and a quick run checkpoints every iteration — 3 smoke
    # iterations never reach the gated full-size cadence).
    if backend_only != "serial" and any(c.name == "pagerank" for c in cases):
        results["checkpoint_overhead"] = checkpoint_overhead(
            quick=quick,
            checkpoint_every=1 if quick else CHECKPOINT_EVERY,
        )
        if log:
            ck = results["checkpoint_overhead"]
            log(
                f"checkpoint overhead ({ck['workload']}, every "
                f"{ck['checkpoint_every']} iters): {ck['overhead_pct']}% "
                f"({ck['ckpt_writes']} spool writes, "
                f"{ck['ckpt_bytes']:,} bytes)"
            )
    # The Maiter-mode sync/async A/B needs the multiprocess backend for
    # its mesh counters; it honors the workload filter by name.
    if backend_only != "serial" and any(
        c.name in ACCUM_WORKLOADS for c in cases
    ):
        results["async_convergence"] = async_convergence(
            quick=quick,
            workloads=None if workloads is None
            else [c.name for c in cases],
        )
        if log:
            for row in results["async_convergence"]["workloads"]:
                sync_mode, async_mode = row["modes"]["sync"], row["modes"]["async"]
                log(
                    f"{row['name']}: sync {sync_mode['rounds']} rounds / "
                    f"{sync_mode['deltas_shipped']:,} deltas shipped; async "
                    f"{async_mode['rounds']} rounds / "
                    f"{async_mode['deltas_shipped']:,} shipped "
                    f"(mesh records {async_mode['counters']['records_sent']:,} vs "
                    f"{sync_mode['counters']['records_sent']:,}; "
                    f"states_match={row['states_match']})"
                )
    # The i2MapReduce warm-vs-cold curve is serial-only, so it runs
    # even under --backend-only serial; it honors the workload filter.
    if any(c.name in ACCUM_WORKLOADS for c in cases):
        results["incremental_refresh"] = incremental_refresh(
            quick=quick,
            log=log,
            workloads=None if workloads is None
            else [c.name for c in cases],
        )
    if out_path:
        with open(out_path, "w") as fh:
            json.dump(results, fh, indent=2)
            fh.write("\n")
    return results


#: Headroom multiplier for the byte counter when gating: pickle output
#: for the same records can drift a little across numpy point releases.
_BYTES_TOLERANCE = 1.02


def compare_counters(results: dict, baseline: dict) -> list[str]:
    """Gate the data plane against a committed baseline.

    Returns one message per regression: a (workload, workers) point
    whose ``records_sent``/``batches_sent``/``bytes_pickled`` exceeds
    the baseline's (bytes get 2% headroom for pickle drift).  Wall-clock
    numbers are never compared — they belong to the host, the counters
    belong to the protocol.  Points absent from the baseline (new
    workloads, new worker counts) pass silently.

    One wall-clock exception, because it is the PR6 acceptance number:
    on a full-size run (``quick`` false) the gated kernel rows must keep
    ``speedup_vs_record`` at or above :data:`KERNEL_SPEEDUP_FLOOR` — a
    ratio of two timings on the *same* host, so it is load-tolerant in a
    way absolute seconds are not.
    """
    baseline_points: dict[tuple[str, int], dict] = {}
    for row in baseline.get("workloads", ()):
        for point in row.get("parallel", ()):
            if "counters" in point:
                baseline_points[(row["name"], point["workers"])] = point["counters"]

    problems: list[str] = []
    for row in results.get("workloads", ()):
        for point in row.get("parallel", ()):
            base = baseline_points.get((row["name"], point["workers"]))
            if base is None:
                continue
            now = point["counters"]
            for name in ("records_sent", "batches_sent"):
                if name in base and now[name] > base[name]:
                    problems.append(
                        f"{row['name']}@{point['workers']}w: {name} "
                        f"{now[name]} > baseline {base[name]}"
                    )
            if "bytes_pickled" in base and (
                now["bytes_pickled"] > base["bytes_pickled"] * _BYTES_TOLERANCE
            ):
                problems.append(
                    f"{row['name']}@{point['workers']}w: bytes_pickled "
                    f"{now['bytes_pickled']} > baseline "
                    f"{base['bytes_pickled']} (+2% headroom)"
                )
    quick = bool(results.get("meta", {}).get("quick", False))
    for row in results.get("workloads", ()):
        speedup = row.get("speedup_vs_record")
        if (not quick and row["name"] in GATED_KERNEL_ROWS
                and speedup is not None and speedup < KERNEL_SPEEDUP_FLOOR):
            problems.append(
                f"{row['name']}: kernel speedup {speedup}x over the "
                f"record path, floor is {KERNEL_SPEEDUP_FLOOR}x"
            )
        if row.get("kernel_matches_record") is False:
            problems.append(
                f"{row['name']}: kernel state diverged from the record path"
            )
    accum = results.get("async_convergence")
    if accum is not None:
        baseline_accum = {
            row["name"]: row
            for row in baseline.get("async_convergence", {}).get(
                "workloads", ()
            )
        }
        for row in accum.get("workloads", ()):
            for gate in (
                "async_fewer_delta_records",
                "async_fewer_mesh_records",
                "async_fewer_mesh_bytes",
            ):
                if row.get(gate) is False:
                    problems.append(
                        f"{row['name']}: {gate} gate failed — async must "
                        "ship strictly less than sync to the same threshold"
                    )
            if row.get("states_match") is False:
                problems.append(
                    f"{row['name']}: async fixpoint diverged from the "
                    "sync fixpoint"
                )
            for mode, point in row.get("modes", {}).items():
                if point.get("parallel_identical") is False:
                    problems.append(
                        f"{row['name']} [{mode}]: parallel run diverged "
                        "from its serial twin"
                    )
                base_row = baseline_accum.get(row["name"])
                base_point = (base_row or {}).get("modes", {}).get(mode)
                if base_point is None:
                    continue
                base_counters = base_point.get("counters", {})
                now = point["counters"]
                for name in ("records_sent", "batches_sent"):
                    if name in base_counters and now[name] > base_counters[name]:
                        problems.append(
                            f"{row['name']} [{mode}]: {name} {now[name]} > "
                            f"baseline {base_counters[name]}"
                        )
                if "bytes_pickled" in base_counters and (
                    now["bytes_pickled"]
                    > base_counters["bytes_pickled"] * _BYTES_TOLERANCE
                ):
                    problems.append(
                        f"{row['name']} [{mode}]: bytes_pickled "
                        f"{now['bytes_pickled']} > baseline "
                        f"{base_counters['bytes_pickled']} (+2% headroom)"
                    )
    incr = results.get("incremental_refresh")
    if incr is not None:
        gated_churn = incr.get("gated_churn", GATED_CHURN)
        for row in incr.get("workloads", ()):
            for level in row.get("levels", ()):
                churn = level.get("churn", 1.0)
                if level.get("states_match") is False:
                    problems.append(
                        f"{row['name']}@{churn:.1%}: warm refresh diverged "
                        "from the cold rerun on the mutated input"
                    )
                if churn > gated_churn:
                    continue
                if level.get("warm_fewer_updates") is False:
                    problems.append(
                        f"{row['name']}@{churn:.1%}: warm refresh must "
                        "recompute strictly fewer pairs than a cold rerun "
                        f"(warm {level['warm']['updates_processed']} vs "
                        f"cold {level['cold']['updates_processed']})"
                    )
                if level.get("warm_fewer_shipped") is False:
                    problems.append(
                        f"{row['name']}@{churn:.1%}: warm refresh must "
                        "ship strictly fewer delta records than a cold "
                        f"rerun (warm {level['warm']['deltas_shipped']} vs "
                        f"cold {level['cold']['deltas_shipped']})"
                    )
    ckpt = results.get("checkpoint_overhead")
    if ckpt is not None:
        pct = ckpt.get("overhead_pct")
        if (not quick and pct is not None
                and pct > CHECKPOINT_OVERHEAD_CEILING):
            problems.append(
                f"checkpoint overhead {pct}% of wall clock at "
                f"checkpoint_every={ckpt['checkpoint_every']}, ceiling is "
                f"{CHECKPOINT_OVERHEAD_CEILING}%"
            )
        if ckpt.get("record_identical") is False:
            problems.append("checkpointed run diverged from the plain run")
        if ckpt.get("dataplane_counters_identical") is False:
            problems.append(
                "checkpoint frames leaked into the data-plane counters"
            )
    return problems


def format_phase_breakdown(results: dict) -> str:
    """Render the profiler section as an aligned text table.

    Each cell shows absolute seconds *and* the phase's share of that
    row's total profiled time — the share is what makes two rows with
    different wall clocks comparable (the absolute numbers belong to
    the host, the split belongs to the engine).  The column set comes
    from ``PHASE_COUNTERS`` verbatim, so the Maiter loop's ``schedule``
    and ``delta`` phases appear next to the classic ones.
    """
    from ..imapreduce.workerproc import PHASE_COUNTERS

    lines = [
        "phase breakdown (seconds / % of row total, summed over workers):",
        "  {:<16} {:>3}  ".format("workload", "w")
        + "".join(f"{name:>15}" for name in PHASE_COUNTERS),
    ]
    for name, per_workers in results.get("phase_breakdown", {}).items():
        for w, phases in per_workers.items():
            total = sum(phases.get(counter, 0.0) for counter in PHASE_COUNTERS)
            cells = []
            for counter in PHASE_COUNTERS:
                seconds = phases.get(counter, 0.0)
                pct = (seconds / total * 100.0) if total > 0 else 0.0
                cells.append(f"{seconds:>9.4f} {pct:>3.0f}%")
            lines.append(f"  {name:<16} {w:>3}  " + "".join(cells))
    return "\n".join(lines)


# ------------------------------------------------------------- history --
def load_history(root: str = ".") -> list[dict]:
    """Committed ``BENCH_PR*.json`` baselines, sorted by PR number.

    CI artifacts (``*.ci.json``) and unreadable files are skipped; each
    entry carries the PR number, the file name, and the parsed JSON.
    """
    import glob
    import re

    entries: list[dict] = []
    for path in glob.glob(os.path.join(root, "BENCH_PR*.json")):
        match = re.fullmatch(r"BENCH_PR(\d+)\.json", os.path.basename(path))
        if match is None:
            continue
        try:
            with open(path) as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            continue
        entries.append(
            {"pr": int(match.group(1)), "file": os.path.basename(path),
             "data": data}
        )
    entries.sort(key=lambda e: e["pr"])
    return entries


def _na(value, fmt: str = "{}") -> str:
    """Backfill for counter keys a baseline predates: older
    ``BENCH_PR*.json`` files simply lack sections and counters newer
    PRs introduced, and the trajectory table must render them as
    ``n/a`` rather than crash or fake a zero."""
    return "n/a" if value is None else fmt.format(value)


def format_history(entries: list[dict]) -> str:
    """The benchmark trajectory across committed baselines, as a table.

    One block per baseline (host metadata — absolute seconds are only
    comparable within a block), one row per workload: serial seconds,
    the best parallel speedup, and the 2-worker data-plane counters the
    CI gate watches.  Accumulative A/B sections contribute their
    sync-vs-async shipped-delta ratio; incremental-refresh sections the
    warm-vs-cold update speedup per churn level.  Keys a baseline
    predates render as ``n/a`` (see :func:`_na`) — the history command
    must keep working over every committed baseline, not just the
    newest schema.
    """
    if not entries:
        return "no BENCH_PR*.json baselines found"
    lines: list[str] = ["benchmark trajectory (committed baselines):"]
    for entry in entries:
        data = entry["data"]
        meta = data.get("meta", {})
        lines.append(
            f"\n{entry['file']}  (cpus={meta.get('cpu_count')}, "
            f"quick={meta.get('quick')}, {meta.get('timestamp', '?')})"
        )
        lines.append(
            f"  {'workload':<18} {'serial_s':>9} {'best_speedup':>13} "
            f"{'records@2w':>12} {'bytes@2w':>12}"
        )
        for row in data.get("workloads", ()):
            speedups = [
                p["speedup"] for p in row.get("parallel", ())
                if p.get("speedup") is not None
            ]
            best = f"{max(speedups):.2f}x" if speedups else "n/a"
            two_w = next(
                (p for p in row.get("parallel", ()) if p.get("workers") == 2),
                None,
            )
            counters = (two_w or {}).get("counters", {})
            lines.append(
                f"  {row.get('name', '?'):<18} "
                f"{_na(row.get('serial_seconds'), '{:.3f}'):>9} "
                f"{best:>13} "
                f"{_na(counters.get('records_sent')):>12} "
                f"{_na(counters.get('bytes_pickled')):>12}"
            )
        accum = data.get("async_convergence")
        if accum:
            for row in accum.get("workloads", ()):
                sync_mode = row.get("modes", {}).get("sync", {})
                async_mode = row.get("modes", {}).get("async", {})
                shipped_sync = sync_mode.get("deltas_shipped")
                shipped_async = async_mode.get("deltas_shipped")
                ratio = (
                    f"{shipped_async / shipped_sync:.2f}x"
                    if shipped_sync and shipped_async is not None else "n/a"
                )
                lines.append(
                    f"  {row.get('name', '?'):<18} async ships "
                    f"{_na(shipped_async, '{:,}')} vs sync "
                    f"{_na(shipped_sync, '{:,}')} delta records ({ratio}); "
                    f"states_match={row.get('states_match', 'n/a')}"
                )
        incr = data.get("incremental_refresh")
        if incr:
            for row in incr.get("workloads", ()):
                points = ", ".join(
                    f"{level.get('churn', 0):.1%}:"
                    f"{_na(level.get('update_speedup'), '{}x')}"
                    for level in row.get("levels", ())
                )
                matches = all(
                    level.get("states_match") is not False
                    for level in row.get("levels", ())
                )
                lines.append(
                    f"  {row.get('name', '?'):<18} warm-vs-cold update "
                    f"speedup by churn: {points or 'n/a'}; "
                    f"states_match={matches}"
                )
    return "\n".join(lines)
