"""Experiment harness: workload runner and per-figure reproductions."""

from .figures import ALL_FIGURES, FigureResult
from .workloads import RunSpec, active_cost_model, execute, make_cluster, set_cost_model

__all__ = [
    "ALL_FIGURES",
    "FigureResult",
    "RunSpec",
    "active_cost_model",
    "execute",
    "make_cluster",
    "set_cost_model",
]
