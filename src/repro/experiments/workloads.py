"""Workload runner shared by every figure reproduction.

A :class:`RunSpec` names one (algorithm, dataset, engine, cluster,
variant) combination; :func:`execute` builds a fresh simulated cluster,
ingests the dataset, runs the job and returns its
:class:`~repro.metrics.RunMetrics`.  Results are cached per spec so
figures that share a run (e.g. Figs. 8, 11, 12 all use SSSP-l on the
20-instance cluster) pay for it once per process.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..algorithms import kmeans, matrixpower, pagerank, sssp
from ..cluster import Cluster, ec2_cluster, local_cluster
from ..common import stable_seed
from ..data import load_graph, load_lastfm
from ..dfs import DFS
from ..imapreduce import IMapReduceRuntime
from ..mapreduce import IterativeDriver, MapReduceRuntime
from ..metrics import RunMetrics
from ..simulation import Engine

__all__ = ["RunSpec", "execute", "make_cluster", "set_cost_model", "active_cost_model"]

from ..mapreduce.costmodel import DEFAULT_COST_MODEL, CostModel

_cost_model: CostModel = DEFAULT_COST_MODEL


def set_cost_model(cost: CostModel | None) -> None:
    """Override the cost model used by subsequent :func:`execute` calls
    (ablation studies).  Clears the run cache."""
    global _cost_model
    _cost_model = cost or DEFAULT_COST_MODEL
    execute.cache_clear()


def active_cost_model() -> CostModel:
    return _cost_model


def _cost_for(spec: RunSpec) -> CostModel:
    """The active cost model, noise-salted by the spec's seed (if any)."""
    if not spec.seed:
        return _cost_model
    return _cost_model.with_overrides(noise_seed=spec.seed)


@dataclass(frozen=True)
class RunSpec:
    """One experiment run, hashable for caching."""

    algorithm: str  # "sssp" | "pagerank" | "kmeans" | "matrixpower"
    dataset: str  # registry name, "lastfm", or "matrix<N>"
    engine: str  # "mapreduce" | "imapreduce"
    cluster: str  # "local" | "ec2-<n>" | "single"
    iterations: int
    sync: bool = False  # iMapReduce synchronous-map variant
    combiner: bool = False
    partitions: int | None = None  # task pairs / reduce count
    #: K-means §5.3 convergence detection (aux phase / extra MR job).
    convergence_detection: bool = False
    #: Figs. 4–7 conditions: distance-based termination armed with an
    #: unreachable threshold, so the baseline pays its per-iteration
    #: convergence-check job and iMapReduce its built-in distance()
    #: merge, without stopping early.
    measure_distance: bool = False
    #: Master seed for every stochastic choice in the run (cost-model
    #: noise, centroid initialization, synthetic matrices).  0 keeps the
    #: historical fixed seeds, so all calibrated figures are unchanged.
    seed: int = 0

    def variant_label(self) -> str:
        if self.engine == "mapreduce":
            return "MapReduce"
        return "iMapReduce (sync.)" if self.sync else "iMapReduce"


def make_cluster(engine: Engine, name: str) -> Cluster:
    if name == "local":
        return local_cluster(engine)
    if name == "single":
        return ec2_cluster(engine, 1)
    if name.startswith("ec2-"):
        return ec2_cluster(engine, int(name.split("-", 1)[1]))
    raise ValueError(f"unknown cluster {name!r}")


def _default_partitions(cluster: Cluster) -> int:
    # One task (pair) per core across the cluster, within the slot limit.
    return sum(m.cores for m in cluster.workers())


#: An always-false termination threshold: distances are non-negative, so
#: the computation measures them every iteration but never stops early.
NEVER = -1.0


def _ingest_parts(dfs: DFS, prefix: str, records: list, parts: int) -> list[str]:
    """Ingest ``records`` as ``parts`` contiguous part files — the shape a
    previous job's output (or a pre-partitioned upload) has on the DFS,
    so the baseline's first iteration schedules a full map wave."""
    chunk = -(-len(records) // parts)
    paths = []
    for i in range(parts):
        path = f"{prefix}/part-{i:05d}"
        dfs.ingest(path, records[i * chunk : (i + 1) * chunk])
        paths.append(path)
    return paths


@lru_cache(maxsize=None)
def execute(spec: RunSpec) -> RunMetrics:
    """Run one spec on a fresh simulated cluster (cached)."""
    engine = Engine()
    cluster = make_cluster(engine, spec.cluster)
    # Replication 3 (Hadoop's default): the baseline pays it on every
    # per-iteration output dump; iMapReduce only for checkpoints.
    dfs = DFS(cluster, replication=min(3, len(cluster)))
    partitions = spec.partitions or _default_partitions(cluster)

    if spec.algorithm == "sssp":
        return _run_sssp(spec, engine, cluster, dfs, partitions)
    if spec.algorithm == "pagerank":
        return _run_pagerank(spec, engine, cluster, dfs, partitions)
    if spec.algorithm == "kmeans":
        return _run_kmeans(spec, engine, cluster, dfs, partitions)
    if spec.algorithm == "matrixpower":
        return _run_matrixpower(spec, engine, cluster, dfs, partitions)
    raise ValueError(f"unknown algorithm {spec.algorithm!r}")


# ----------------------------------------------------------------- SSSP --
def _run_sssp(spec, engine, cluster, dfs, partitions) -> RunMetrics:
    graph = load_graph(spec.dataset)
    if spec.engine == "mapreduce":
        inputs = _ingest_parts(
            dfs, "/in/sssp", sssp.mr_initial_records(graph, 0), partitions
        )
        runtime = MapReduceRuntime(cluster, dfs, cost=_cost_for(spec))
        driver = IterativeDriver(runtime)
        mr_spec = sssp.build_mr_spec(
            output_prefix="/mr/sssp",
            max_iterations=spec.iterations,
            num_reduces=partitions,
            threshold=NEVER if spec.measure_distance else None,
        )
        return driver.run(mr_spec, inputs).metrics
    dfs.ingest("/in/state", sssp.initial_state(graph, 0))
    dfs.ingest("/in/static", sssp.static_records(graph))
    job = sssp.build_imr_job(
        state_path="/in/state",
        static_path="/in/static",
        output_path="/out/sssp",
        max_iterations=spec.iterations,
        threshold=NEVER if spec.measure_distance else None,
        num_pairs=partitions,
        sync=spec.sync,
        combiner=spec.combiner,
    )
    return IMapReduceRuntime(cluster, dfs, cost=_cost_for(spec)).submit(job).metrics


# ------------------------------------------------------------- PageRank --
def _run_pagerank(spec, engine, cluster, dfs, partitions) -> RunMetrics:
    graph = load_graph(spec.dataset)
    if spec.engine == "mapreduce":
        inputs = _ingest_parts(
            dfs, "/in/pr", pagerank.mr_initial_records(graph), partitions
        )
        runtime = MapReduceRuntime(cluster, dfs, cost=_cost_for(spec))
        driver = IterativeDriver(runtime)
        mr_spec = pagerank.build_mr_spec(
            graph.num_nodes,
            output_prefix="/mr/pr",
            max_iterations=spec.iterations,
            num_reduces=partitions,
            threshold=NEVER if spec.measure_distance else None,
        )
        return driver.run(mr_spec, inputs).metrics
    dfs.ingest("/in/state", pagerank.initial_state(graph))
    dfs.ingest("/in/static", pagerank.static_records(graph))
    job = pagerank.build_imr_job(
        graph.num_nodes,
        state_path="/in/state",
        static_path="/in/static",
        output_path="/out/pr",
        max_iterations=spec.iterations,
        threshold=NEVER if spec.measure_distance else None,
        num_pairs=partitions,
        sync=spec.sync,
        combiner=spec.combiner,
    )
    return IMapReduceRuntime(cluster, dfs, cost=_cost_for(spec)).submit(job).metrics


# -------------------------------------------------------------- K-means --
#: Fig. 16 workload scale (paper: 359,347 users, 48.9 artists/user).
KMEANS_USERS = 4000
KMEANS_ARTISTS = 500
KMEANS_K = 10
#: Fig. 20: stop when fewer users than this move between clusters.
KMEANS_MOVE_THRESHOLD = 40


def _run_kmeans(spec, engine, cluster, dfs, partitions) -> RunMetrics:
    data = load_lastfm(num_users=KMEANS_USERS, num_artists=KMEANS_ARTISTS, num_tastes=KMEANS_K)
    centroid_seed = (
        stable_seed(spec.seed, "centroids") % (2**31) if spec.seed else 1
    )
    centroids = kmeans.initial_centroids(data, KMEANS_K, seed=centroid_seed)
    point_parts = _ingest_parts(dfs, "/km/points", data.user_records(), partitions)
    dfs.ingest("/km/points", data.user_records())
    dfs.ingest("/km/centroids", centroids)
    track = spec.convergence_detection
    if spec.engine == "mapreduce":
        runtime = MapReduceRuntime(cluster, dfs, cost=_cost_for(spec))
        driver = IterativeDriver(runtime)
        mr_spec = kmeans.build_mr_spec(
            points_path=point_parts,
            output_prefix="/mr/km",
            max_iterations=spec.iterations,
            num_reduces=partitions,
            combiner=spec.combiner,
            move_threshold=KMEANS_MOVE_THRESHOLD if track else None,
        )
        return driver.run(mr_spec, ["/km/centroids"]).metrics
    aux = (
        kmeans.make_convergence_aux(KMEANS_MOVE_THRESHOLD, num_tasks=1)
        if track
        else None
    )
    job = kmeans.build_imr_job(
        state_path="/km/centroids",
        static_path="/km/points",
        output_path="/out/km",
        max_iterations=spec.iterations,
        num_pairs=partitions,
        combiner=spec.combiner,
        track_membership=track,
        aux=aux,
    )
    return IMapReduceRuntime(cluster, dfs, cost=_cost_for(spec)).submit(job).metrics


# --------------------------------------------------------- matrix power --
def _matrix_for(dataset: str, seed: int = 0):
    import numpy as np

    size = int(dataset.removeprefix("matrix"))
    rng = np.random.default_rng(stable_seed(seed, "matrix") if seed else 99)
    return rng.uniform(-0.5, 0.5, size=(size, size))


def _run_matrixpower(spec, engine, cluster, dfs, partitions) -> RunMetrics:
    matrix = _matrix_for(spec.dataset, spec.seed)
    if spec.engine == "mapreduce":
        dfs.ingest("/mp/m", matrixpower.matrix_to_mr_records(matrix, "M"))
        dfs.ingest("/mp/n", matrixpower.matrix_to_mr_records(matrix, "N"))
        runtime = MapReduceRuntime(cluster, dfs, cost=_cost_for(spec))
        driver = IterativeDriver(runtime)
        mr_spec = matrixpower.build_mr_spec(
            m_path="/mp/m",
            output_prefix="/mr/mp",
            max_iterations=spec.iterations,
            num_reduces=partitions,
        )
        metrics = driver.run(mr_spec, ["/mp/n"]).metrics
        # The baseline runs two jobs per logical iteration; merge the
        # per-job iteration entries pairwise so both engines report the
        # same logical iteration count.
        merged = []
        for a, b in zip(metrics.iterations[0::2], metrics.iterations[1::2]):
            a.end = b.end
            a.init_time += b.init_time
            a.shuffle_bytes += b.shuffle_bytes
            a.network_bytes += b.network_bytes
            a.index = len(merged)
            merged.append(a)
        metrics.iterations = merged
        return metrics
    dfs.ingest("/mp/state", matrixpower.matrix_to_state_records(matrix))
    dfs.ingest("/mp/static", matrixpower.matrix_to_column_records(matrix))
    job = matrixpower.build_imr_job(
        state_path="/mp/state",
        static_path="/mp/static",
        output_path="/out/mp",
        max_iterations=spec.iterations,
        num_pairs=partitions,
    )
    return IMapReduceRuntime(cluster, dfs, cost=_cost_for(spec)).submit(job).metrics
