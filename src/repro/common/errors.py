"""Exception hierarchy shared by every repro subsystem.

Each subsystem raises the most specific subclass it can; callers that want
to distinguish "the framework misbehaved" from "the user's job is invalid"
can catch :class:`FrameworkError` vs :class:`JobError`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "FrameworkError",
    "SimulationError",
    "ClusterError",
    "DFSError",
    "FileNotFoundInDFS",
    "FileAlreadyExists",
    "JobError",
    "ConfigError",
    "SchedulingError",
    "TaskFailure",
    "WorkerFailure",
    "MigrationError",
]


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class FrameworkError(ReproError):
    """An internal invariant of the framework was violated."""


class SimulationError(FrameworkError):
    """The discrete-event kernel was used incorrectly (e.g. yielding a
    non-event, running a finished engine)."""


class ClusterError(FrameworkError):
    """Cluster topology or machine-resource misuse."""


class DFSError(FrameworkError):
    """Distributed-file-system errors."""


class FileNotFoundInDFS(DFSError):
    """A DFS path was read before it was written."""


class FileAlreadyExists(DFSError):
    """A DFS path was created twice without ``overwrite=True``."""


class JobError(ReproError):
    """The submitted job is invalid (bad configuration or user code)."""


class ConfigError(JobError):
    """A job parameter is missing, of the wrong type, or out of range."""


class SchedulingError(FrameworkError):
    """The scheduler could not place tasks (e.g. more persistent task
    pairs than available slots — the paper's §3.1.1 constraint)."""


class TaskFailure(FrameworkError):
    """A map or reduce task died (user exception or injected fault)."""

    def __init__(self, task_id: str, cause: BaseException | str):
        super().__init__(f"task {task_id} failed: {cause}")
        self.task_id = task_id
        self.cause = cause


class WorkerFailure(FrameworkError):
    """A whole worker machine failed (fault injection)."""

    def __init__(self, worker: str, when: float):
        super().__init__(f"worker {worker} failed at t={when:.3f}")
        self.worker = worker
        self.when = when


class MigrationError(FrameworkError):
    """Load-balancing migration could not be carried out."""
