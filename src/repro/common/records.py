"""Key/value record types used throughout both engines.

The paper's data model is Hadoop's: every stage consumes and produces
``(key, value)`` pairs.  iMapReduce adds the *state*/*static* distinction
(§3.2): for a given key there is one static record (never changes — e.g. a
node's adjacency list) and one state record (updated every iteration —
e.g. the node's shortest distance or rank).  :class:`JoinedRecord` is what
the framework hands to an iMapReduce ``map()`` after the automatic join.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generic, Iterable, Iterator, TypeVar

K = TypeVar("K")
V = TypeVar("V")

__all__ = ["KeyValue", "JoinedRecord", "group_by_key", "kv_pairs"]


@dataclass(frozen=True, slots=True)
class KeyValue(Generic[K, V]):
    """One immutable key/value pair.

    Plain tuples are accepted everywhere a ``KeyValue`` is; this class
    exists for readability at API boundaries and for its helpers.
    """

    key: K
    value: V

    def astuple(self) -> tuple[K, V]:
        return (self.key, self.value)

    def __iter__(self) -> Iterator[Any]:  # allows ``k, v = record``
        yield self.key
        yield self.value


@dataclass(frozen=True, slots=True)
class JoinedRecord(Generic[K]):
    """A state record joined with its same-key static record (§3.2.2)."""

    key: K
    state: Any
    static: Any

    def __iter__(self) -> Iterator[Any]:
        yield self.key
        yield self.state
        yield self.static


def kv_pairs(pairs: Iterable[Any]) -> list[tuple[Any, Any]]:
    """Normalise an iterable of ``KeyValue`` / 2-tuples to plain tuples."""
    out: list[tuple[Any, Any]] = []
    for p in pairs:
        if isinstance(p, KeyValue):
            out.append(p.astuple())
        else:
            k, v = p
            out.append((k, v))
    return out


def group_by_key(pairs: Iterable[tuple[Any, Any]]) -> list[tuple[Any, list[Any]]]:
    """Group pairs by key, returning groups sorted by key.

    This is the merge step every reducer sees: for each key, the list of
    all values emitted for it, in emission order within the key.  Sorting
    matches Hadoop's sorted-shuffle contract (and iMapReduce's key-ordered
    join, §3.2.2).

    Fast path: the engines' hot loops group homogeneous keys (all ints,
    or all strings), where native tuple comparison sorts the bucket list
    directly in C — no per-item ``_sort_key`` call or tuple allocation.
    Unorderable key mixes (ints and tuples in the matrix-power job) fall
    back to the type-name-prefixed total order.  The orders agree
    whenever all keys share one type; an orderable *mix* (ints and
    floats) would interleave numerically instead of grouping by type
    name — no engine workload emits such a mix.
    """
    buckets: dict[Any, list[Any]] = {}
    for k, v in pairs:
        buckets.setdefault(k, []).append(v)
    items = list(buckets.items())
    if len(items) <= 1:
        return items
    try:
        # Keys are unique, so comparison never reaches the value lists.
        items.sort()
    except TypeError:
        # A failed sort leaves ``items`` permuted but intact; re-sort
        # under the heterogeneous total order.
        items.sort(key=lambda item: _sort_key(item[0]))
    return items


def _sort_key(key: Any) -> Any:
    """Total order over heterogeneous keys: group by type name first.

    Real Hadoop sorts serialized bytes; we sort Python values, but keys of
    mixed types (e.g. ints and tuples in the matrix-power job) must not
    raise, so we prefix each key with its type name.
    """
    return (type(key).__name__, key)
