"""Partitioners: map a record key to one of ``n`` partitions.

Partitioning is load-bearing in iMapReduce (§3.2.1): the static data is
partitioned *once* with the same function used to shuffle the state data,
which is what guarantees that a state record always arrives at the reduce
task whose paired map task holds the matching static record.  Hence every
partitioner here must be a pure function of ``(key, n)``.

Python's builtin ``hash`` is salted per process for ``str``; we therefore
use a small stable FNV-1a implementation so partition assignment is
reproducible across runs and processes.
"""

from __future__ import annotations

from typing import Any, Callable, Protocol

__all__ = [
    "Partitioner",
    "HashPartitioner",
    "ModPartitioner",
    "RangePartitioner",
    "stable_hash",
    "bind_partitioner",
    "default_partitioner",
]


class Partitioner(Protocol):
    """Callable protocol: ``partitioner(key, num_partitions) -> int``."""

    def __call__(self, key: Any, num_partitions: int) -> int: ...


_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK = 0xFFFFFFFFFFFFFFFF


def _fnv1a(data: bytes) -> int:
    h = _FNV_OFFSET
    for byte in data:
        h ^= byte
        h = (h * _FNV_PRIME) & _MASK
    return h


def stable_hash(key: Any) -> int:
    """Process-independent 64-bit hash of a record key.

    Supports the key types the engines use: ints, strings, floats, bools,
    None, and tuples thereof (matrix-power keys are ``(i, k)`` tuples).
    """
    if isinstance(key, bool):
        return _fnv1a(b"b1" if key else b"b0")
    if isinstance(key, int):
        return _fnv1a(b"i" + key.to_bytes(16, "little", signed=True))
    if isinstance(key, float):
        return _fnv1a(b"f" + repr(key).encode())
    if isinstance(key, str):
        return _fnv1a(b"s" + key.encode("utf-8"))
    if isinstance(key, bytes):
        return _fnv1a(b"y" + key)
    if key is None:
        return _fnv1a(b"n")
    if isinstance(key, tuple):
        h = _FNV_OFFSET
        for part in key:
            h ^= stable_hash(part)
            h = (h * _FNV_PRIME) & _MASK
        return h
    raise TypeError(f"unhashable partition key type: {type(key).__name__}")


class HashPartitioner:
    """Hadoop's default: ``hash(key) mod n`` with a stable hash."""

    def __call__(self, key: Any, num_partitions: int) -> int:
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        return stable_hash(key) % num_partitions

    def bind(self, num_partitions: int) -> Callable[[Any], int]:
        def part(key: Any, _n: int = num_partitions) -> int:
            return stable_hash(key) % _n

        return part

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "HashPartitioner()"


class ModPartitioner:
    """``key mod n`` for integer keys.

    Spreads contiguous node ids evenly; used by the graph workloads so a
    partition's node set is deterministic and easy to reason about in
    tests.  Non-integer keys fall back to the stable hash.
    """

    def __call__(self, key: Any, num_partitions: int) -> int:
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        if isinstance(key, bool) or not isinstance(key, int):
            return stable_hash(key) % num_partitions
        return key % num_partitions

    def bind(self, num_partitions: int) -> Callable[[Any], int]:
        # ``type(key) is int`` is one pointer compare and already
        # excludes bool (an int subclass), so the graph engines' int-key
        # hot path pays a single modulo per record.
        def part(key: Any, _n: int = num_partitions) -> int:
            if type(key) is int:
                return key % _n
            return stable_hash(key) % _n

        return part

    def bind_array(self, num_partitions: int):
        """Vectorized form over an int64 key array (the columnar kernel
        path routes whole emission arrays in one modulo).  numpy's ``%``
        is floor-mod like Python's, so it agrees with :meth:`bind` for
        every int key, negative ones included."""
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")

        def part_array(keys, _n: int = num_partitions):
            return keys % _n

        return part_array

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "ModPartitioner()"


class RangePartitioner:
    """Contiguous key ranges for integer keys in ``[0, total)``.

    Partition ``p`` owns keys ``[p * ceil(total/n), ...)``.  Keeps each
    partition's keys contiguous, which mirrors how the framework's graph
    loader splits node-id ranges across workers.
    """

    def __init__(self, total_keys: int):
        if total_keys <= 0:
            raise ValueError("total_keys must be positive")
        self.total_keys = total_keys

    def __call__(self, key: Any, num_partitions: int) -> int:
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        if isinstance(key, bool) or not isinstance(key, int):
            return stable_hash(key) % num_partitions
        width = -(-self.total_keys // num_partitions)  # ceil division
        return min(int(key) // width, num_partitions - 1)

    def bind(self, num_partitions: int) -> Callable[[Any], int]:
        width = -(-self.total_keys // num_partitions)
        last = num_partitions - 1

        def part(key: Any, _n: int = num_partitions) -> int:
            if type(key) is int:
                return min(key // width, last)
            if isinstance(key, bool) or not isinstance(key, int):
                return stable_hash(key) % _n
            return min(int(key) // width, last)

        return part

    def bind_array(self, num_partitions: int):
        """Vectorized form over an int64 key array (columnar kernels)."""
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        width = -(-self.total_keys // num_partitions)
        last = num_partitions - 1

        def part_array(keys, _width: int = width, _last: int = last):
            import numpy as np

            return np.minimum(keys // _width, _last)

        return part_array

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RangePartitioner(total_keys={self.total_keys})"


def bind_partitioner(
    partitioner: Partitioner, num_partitions: int
) -> Callable[[Any], int]:
    """Pre-bind ``partitioner(key, n)`` to a single-argument fast form.

    Partition dispatch sits inside every per-record loop of the serial
    and multiprocess executors; binding ``n`` once hoists the argument
    checks (and, for the builtin partitioners, the isinstance ladder)
    out of the loop.  Partitioners may offer an optimized ``bind(n)``;
    anything else is wrapped generically, so user partitioners keep
    working unchanged.
    """
    if num_partitions <= 0:
        raise ValueError("num_partitions must be positive")
    bind = getattr(partitioner, "bind", None)
    if bind is not None:
        return bind(num_partitions)
    return lambda key: partitioner(key, num_partitions)


#: Factory used when a job does not set a partitioner explicitly.
default_partitioner: Callable[[], Partitioner] = HashPartitioner
