"""Deterministic byte-size accounting for records.

Every byte the simulator moves over a disk or NIC pipe is priced by this
module.  We deliberately do *not* call ``pickle``: the goal is a stable,
explainable size model that mirrors Hadoop's Writable encodings closely
enough for the paper's communication-volume results (Fig. 11) to hold.

Sizes (bytes):

====================  =====================================================
``int``               9  (Hadoop VLongWritable worst case: 1 tag + 8 data)
``float``             9  (DoubleWritable + tag)
``bool``/``None``     1
``str``               2 + len(utf8)  (length-prefixed Text)
``bytes``             4 + len
``tuple``/``list``    2 + sum(items)
``dict``              2 + sum(key + value)
``numpy scalar``      itemsize + 1
``numpy array``       8 + nbytes
====================  =====================================================

A serialized key/value *record* additionally pays
:data:`RECORD_OVERHEAD` bytes (framing: lengths + sync markers), matching
the overhead of a SequenceFile record.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Any, Iterable

import numpy as np

__all__ = [
    "RECORD_OVERHEAD",
    "sizeof_value",
    "sizeof_record",
    "sizeof_records",
    "sizeof_text_line",
]

#: Per-record framing overhead (key length + value length + sync), bytes.
RECORD_OVERHEAD = 8

_INT_SIZE = 9
_FLOAT_SIZE = 9


def sizeof_value(value: Any) -> int:
    """Size in bytes of one value under the encoding table above."""
    if value is None or isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return _INT_SIZE
    if isinstance(value, float):
        return _FLOAT_SIZE
    if isinstance(value, str):
        return 2 + len(value.encode("utf-8"))
    if isinstance(value, (bytes, bytearray)):
        return 4 + len(value)
    if isinstance(value, np.ndarray):
        return 8 + int(value.nbytes)
    if isinstance(value, np.generic):
        return 1 + int(value.dtype.itemsize)
    if isinstance(value, dict):
        return 2 + sum(sizeof_value(k) + sizeof_value(v) for k, v in value.items())
    if isinstance(value, (tuple, list, set, frozenset)):
        return 2 + sum(sizeof_value(item) for item in value)
    # Dataclass-ish objects with __dict__: price their fields.
    if hasattr(value, "__dict__"):
        return 2 + sum(sizeof_value(v) for v in vars(value).values())
    raise TypeError(f"no size model for {type(value).__name__}")


def sizeof_record(key: Any, value: Any) -> int:
    """Size in bytes of one framed key/value record."""
    return RECORD_OVERHEAD + sizeof_value(key) + sizeof_value(value)


def sizeof_records(pairs: Iterable[tuple[Any, Any]]) -> int:
    """Total framed size of an iterable of key/value pairs."""
    return sum(sizeof_record(k, v) for k, v in pairs)


@lru_cache(maxsize=None)
def _digits(n: int) -> int:
    return len(str(n))


def sizeof_text_line(key: Any, value: Any) -> int:
    """Size of a record in the *text* input formats (graph files).

    Used to report dataset file sizes in the Tables 1–2 reproduction:
    a tab-separated line ``key\\tvalue\\n``.
    """
    return len(_text(key)) + 1 + len(_text(value)) + 1


def _text(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    if isinstance(value, (tuple, list)):
        return " ".join(_text(v) for v in value)
    return str(value)
