"""Deterministic byte-size accounting for records.

Every byte the simulator moves over a disk or NIC pipe is priced by this
module.  We deliberately do *not* call ``pickle``: the goal is a stable,
explainable size model that mirrors Hadoop's Writable encodings closely
enough for the paper's communication-volume results (Fig. 11) to hold.

Sizes (bytes):

====================  =====================================================
``int``               9  (Hadoop VLongWritable worst case: 1 tag + 8 data)
``float``             9  (DoubleWritable + tag)
``bool``/``None``     1
``str``               2 + len(utf8)  (length-prefixed Text)
``bytes``             4 + len
``tuple``/``list``    2 + sum(items)
``dict``              2 + sum(key + value)
``numpy scalar``      itemsize + 1
``numpy array``       8 + nbytes
====================  =====================================================

A serialized key/value *record* additionally pays
:data:`RECORD_OVERHEAD` bytes (framing: lengths + sync markers), matching
the overhead of a SequenceFile record.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Any, Iterable

import numpy as np

__all__ = [
    "RECORD_OVERHEAD",
    "sizeof_value",
    "sizeof_record",
    "sizeof_records",
    "sizeof_text_line",
]

#: Per-record framing overhead (key length + value length + sync), bytes.
RECORD_OVERHEAD = 8

_INT_SIZE = 9
_FLOAT_SIZE = 9

# ---------------------------------------------------------- memoization --
# The figure benchmarks price the same values over and over: a graph's
# adjacency tuples are priced once per iteration per record, and string /
# tuple keys recur every time a record crosses a pipe.  Sizes of
# immutable values never change, so small ones are memoized.  The cache
# key embeds the type of every component: ``1``, ``1.0`` and ``True``
# are equal as dict keys but have different modelled sizes.

_MEMO_MAX_ENTRIES = 1 << 16
_MEMO_MAX_TUPLE = 16
_MEMO_MAX_STR = 64
_memo: dict = {}


def _memo_key(value: Any):
    """A type-aware cache key for small immutable values, else ``None``."""
    t = value.__class__
    if t is int or t is float or t is bool:
        return (t, value)
    if t is str:
        return (t, value) if len(value) <= _MEMO_MAX_STR else None
    if value is None:
        return (type(None),)
    if t is tuple:
        if len(value) > _MEMO_MAX_TUPLE:
            return None
        parts = []
        for item in value:
            part = _memo_key(item)
            if part is None:
                return None
            parts.append(part)
        return (t, tuple(parts))
    return None


def sizeof_value(value: Any) -> int:
    """Size in bytes of one value under the encoding table above."""
    key = _memo_key(value)
    if key is not None:
        cached = _memo.get(key)
        if cached is not None:
            return cached
        size = _sizeof_uncached(value)
        if len(_memo) < _MEMO_MAX_ENTRIES:
            _memo[key] = size
        return size
    return _sizeof_uncached(value)


def _sizeof_uncached(value: Any) -> int:
    if value is None or isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return _INT_SIZE
    if isinstance(value, float):
        return _FLOAT_SIZE
    if isinstance(value, str):
        return 2 + len(value.encode("utf-8"))
    if isinstance(value, (bytes, bytearray)):
        return 4 + len(value)
    if isinstance(value, np.ndarray):
        return 8 + int(value.nbytes)
    if isinstance(value, np.generic):
        return 1 + int(value.dtype.itemsize)
    if isinstance(value, dict):
        return 2 + sum(sizeof_value(k) + sizeof_value(v) for k, v in value.items())
    if isinstance(value, (tuple, list, set, frozenset)):
        return 2 + sum(sizeof_value(item) for item in value)
    # Dataclass-ish objects with __dict__: price their fields.
    if hasattr(value, "__dict__"):
        return 2 + sum(sizeof_value(v) for v in vars(value).values())
    raise TypeError(f"no size model for {type(value).__name__}")


def sizeof_record(key: Any, value: Any) -> int:
    """Size in bytes of one framed key/value record."""
    return RECORD_OVERHEAD + sizeof_value(key) + sizeof_value(value)


def sizeof_records(pairs: Iterable[tuple[Any, Any]]) -> int:
    """Total framed size of an iterable of key/value pairs."""
    return sum(sizeof_record(k, v) for k, v in pairs)


@lru_cache(maxsize=None)
def _digits(n: int) -> int:
    return len(str(n))


def sizeof_text_line(key: Any, value: Any) -> int:
    """Size of a record in the *text* input formats (graph files).

    Used to report dataset file sizes in the Tables 1–2 reproduction:
    a tab-separated line ``key\\tvalue\\n``.
    """
    return len(_text(key)) + 1 + len(_text(value)) + 1


def _text(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    if isinstance(value, (tuple, list)):
        return " ".join(_text(v) for v in value)
    return str(value)
