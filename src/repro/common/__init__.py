"""Shared building blocks: records, sizes, partitioners, configuration."""

from .config import IterKeys, JobConf, stable_seed
from .errors import (
    ClusterError,
    ConfigError,
    DFSError,
    FileAlreadyExists,
    FileNotFoundInDFS,
    FrameworkError,
    JobError,
    MigrationError,
    ReproError,
    SchedulingError,
    SimulationError,
    TaskFailure,
    WorkerFailure,
)
from .partition import (
    HashPartitioner,
    ModPartitioner,
    Partitioner,
    RangePartitioner,
    default_partitioner,
    stable_hash,
)
from .records import JoinedRecord, KeyValue, group_by_key, kv_pairs
from .serialization import (
    RECORD_OVERHEAD,
    sizeof_record,
    sizeof_records,
    sizeof_text_line,
    sizeof_value,
)

__all__ = [
    "IterKeys",
    "JobConf",
    "stable_seed",
    "ClusterError",
    "ConfigError",
    "DFSError",
    "FileAlreadyExists",
    "FileNotFoundInDFS",
    "FrameworkError",
    "JobError",
    "MigrationError",
    "ReproError",
    "SchedulingError",
    "SimulationError",
    "TaskFailure",
    "WorkerFailure",
    "HashPartitioner",
    "ModPartitioner",
    "Partitioner",
    "RangePartitioner",
    "default_partitioner",
    "stable_hash",
    "JoinedRecord",
    "KeyValue",
    "group_by_key",
    "kv_pairs",
    "RECORD_OVERHEAD",
    "sizeof_record",
    "sizeof_records",
    "sizeof_text_line",
    "sizeof_value",
]
