"""``JobConf`` — typed key/value job configuration.

Mirrors Hadoop's ``JobConf`` so that the paper's API (§3.5) can be
written verbatim::

    conf = JobConf()
    conf.set("mapred.iterjob.statepath", "/data/pagerank/state")
    conf.set("mapred.iterjob.staticpath", "/data/pagerank/static")
    conf.set_int("mapred.iterjob.maxiter", 20)
    conf.set_float("mapred.iterjob.disthresh", 0.01)
    conf.set("mapred.iterjob.mapping", "one2all")
    conf.set_boolean("mapred.iterjob.sync", True)

The iterative engine reads these exact keys (see
:mod:`repro.imapreduce.job`).  Unknown keys are allowed — Hadoop's conf is
an open namespace — but typed getters validate on read.
"""

from __future__ import annotations

import hashlib
from typing import Any, Iterator, Mapping

from .errors import ConfigError

__all__ = ["JobConf", "IterKeys", "stable_seed"]


class IterKeys:
    """The ``mapred.iterjob.*`` parameter names from §3.5 of the paper."""

    STATE_PATH = "mapred.iterjob.statepath"
    STATIC_PATH = "mapred.iterjob.staticpath"
    MAX_ITER = "mapred.iterjob.maxiter"
    DIST_THRESH = "mapred.iterjob.disthresh"
    MAPPING = "mapred.iterjob.mapping"  # "one2one" (default) | "one2all"
    SYNC = "mapred.iterjob.sync"  # force synchronous map execution
    CHECKPOINT_INTERVAL = "mapred.iterjob.checkpointinterval"
    #: Real-backend durable checkpoint cadence for :func:`run_parallel`
    #: (iterations between spool dumps; unset/0 = no checkpointing).
    #: Kept separate from CHECKPOINT_INTERVAL, which prices the
    #: *simulated* runtime's DFS dumps.
    PARALLEL_CHECKPOINT = "mapred.iterjob.parallelcheckpoint"
    BUFFER_RECORDS = "mapred.iterjob.bufferrecords"
    #: Master seed for every stochastic choice a run makes (service-time
    #: noise, seeded sub-generators).  ``0`` (the default) keeps the
    #: historical fixed constants, so existing experiments are unchanged;
    #: any other value makes the whole run a pure function of the seed —
    #: the replay contract the chaos harness depends on.
    SEED = "mapred.iterjob.seed"


_MISSING = object()


def stable_seed(*parts: Any) -> int:
    """A deterministic 63-bit seed derived from arbitrary parts.

    Unlike ``hash()``, the result is stable across processes and Python
    versions (no ``PYTHONHASHSEED`` dependence), which is what makes a
    failing chaos campaign replayable from a one-line seed.
    """
    digest = hashlib.blake2b(repr(parts).encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") >> 1


class JobConf:
    """An open string-keyed configuration with typed accessors."""

    def __init__(self, initial: Mapping[str, Any] | None = None):
        self._values: dict[str, Any] = dict(initial or {})

    # -- setters ---------------------------------------------------------
    def set(self, key: str, value: Any) -> "JobConf":
        self._check_key(key)
        self._values[key] = value
        return self

    def set_int(self, key: str, value: int) -> "JobConf":
        if isinstance(value, bool) or not isinstance(value, int):
            raise ConfigError(f"{key}: expected int, got {type(value).__name__}")
        return self.set(key, value)

    def set_float(self, key: str, value: float) -> "JobConf":
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ConfigError(f"{key}: expected float, got {type(value).__name__}")
        return self.set(key, float(value))

    def set_boolean(self, key: str, value: bool) -> "JobConf":
        if not isinstance(value, bool):
            raise ConfigError(f"{key}: expected bool, got {type(value).__name__}")
        return self.set(key, value)

    # -- getters ---------------------------------------------------------
    def get(self, key: str, default: Any = None) -> Any:
        return self._values.get(key, default)

    def get_required(self, key: str) -> Any:
        value = self._values.get(key, _MISSING)
        if value is _MISSING:
            raise ConfigError(f"required job parameter {key!r} is not set")
        return value

    def get_int(self, key: str, default: int | None = None) -> int | None:
        value = self._values.get(key, _MISSING)
        if value is _MISSING:
            return default
        if isinstance(value, bool) or not isinstance(value, int):
            raise ConfigError(f"{key}: expected int, got {value!r}")
        return value

    def get_float(self, key: str, default: float | None = None) -> float | None:
        value = self._values.get(key, _MISSING)
        if value is _MISSING:
            return default
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ConfigError(f"{key}: expected float, got {value!r}")
        return float(value)

    def get_boolean(self, key: str, default: bool = False) -> bool:
        value = self._values.get(key, _MISSING)
        if value is _MISSING:
            return default
        if not isinstance(value, bool):
            raise ConfigError(f"{key}: expected bool, got {value!r}")
        return value

    # -- seed plumbing -----------------------------------------------------
    def get_seed(self, default: int = 0) -> int:
        """The run's master seed (:data:`IterKeys.SEED`)."""
        return self.get_int(IterKeys.SEED, default) or default

    def derive_seed(self, *salt: Any) -> int:
        """A stable sub-seed for one named component of the run.

        Different components salt with different names so they draw
        independent streams from the one master seed.
        """
        return stable_seed(self.get_seed(), *salt)

    def rng(self, *salt: Any):
        """A seeded ``numpy`` generator for the salted component."""
        import numpy as np

        return np.random.default_rng(self.derive_seed(*salt))

    # -- mapping protocol -------------------------------------------------
    def __contains__(self, key: str) -> bool:
        return key in self._values

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def items(self):
        return self._values.items()

    def copy(self) -> "JobConf":
        return JobConf(self._values)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        body = ", ".join(f"{k}={v!r}" for k, v in sorted(self._values.items()))
        return f"JobConf({body})"

    @staticmethod
    def _check_key(key: str) -> None:
        if not isinstance(key, str) or not key:
            raise ConfigError(f"configuration key must be a non-empty str, got {key!r}")
