"""Input-preparation helpers: one call from a graph (or its text form)
to the DFS files an iterative job needs.

The paper (§3.5): "iMapReduce supports automatically graph partitioning
and graph loading for a few particular formatted graphs (including
weighted and unweighted graphs). Users can first format their graphs in
our supported formats."  These helpers are that loading path: they accept
a :class:`~repro.graph.Digraph` or adjacency-text lines (see
:mod:`repro.graph.io`) and ingest the state and static files.
"""

from __future__ import annotations

from typing import Iterable

from ..dfs import DFS
from ..graph import Digraph, parse_adjacency_lines
from . import pagerank, sssp

__all__ = ["as_graph", "prepare_sssp_inputs", "prepare_pagerank_inputs"]


def as_graph(graph_or_lines: Digraph | Iterable[str]) -> Digraph:
    """Accept a Digraph or the framework's adjacency-text format."""
    if isinstance(graph_or_lines, Digraph):
        return graph_or_lines
    return parse_adjacency_lines(graph_or_lines)


def prepare_sssp_inputs(
    dfs: DFS,
    graph_or_lines: Digraph | Iterable[str],
    source: int,
    *,
    prefix: str = "/sssp",
    overwrite: bool = False,
) -> tuple[str, str]:
    """Ingest SSSP's state (initial distances) and static (weighted
    adjacency) files; returns ``(state_path, static_path)`` ready for
    :func:`repro.algorithms.sssp.build_imr_job`."""
    graph = as_graph(graph_or_lines)
    if not 0 <= source < graph.num_nodes:
        raise ValueError(f"source {source} not in graph of {graph.num_nodes} nodes")
    state_path = f"{prefix}/state"
    static_path = f"{prefix}/static"
    dfs.ingest(state_path, sssp.initial_state(graph, source), overwrite=overwrite)
    dfs.ingest(static_path, sssp.static_records(graph), overwrite=overwrite)
    return state_path, static_path


def prepare_pagerank_inputs(
    dfs: DFS,
    graph_or_lines: Digraph | Iterable[str],
    *,
    prefix: str = "/pagerank",
    overwrite: bool = False,
) -> tuple[str, str, int]:
    """Ingest PageRank's state (uniform ranks) and static (adjacency)
    files; returns ``(state_path, static_path, num_nodes)``."""
    graph = as_graph(graph_or_lines)
    state_path = f"{prefix}/state"
    static_path = f"{prefix}/static"
    dfs.ingest(state_path, pagerank.initial_state(graph), overwrite=overwrite)
    dfs.ingest(static_path, pagerank.static_records(graph), overwrite=overwrite)
    return state_path, static_path, graph.num_nodes
