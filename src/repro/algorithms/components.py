"""Connected components by label propagation.

One of the "large class of graph-based iterative algorithms" the paper
targets (§2.2): every node repeatedly adopts the minimum label among its
own and its neighbours'; at convergence each weakly-connected component
carries its smallest member id.  Structurally identical to SSSP (min
fold, one-to-one mapping), so it runs unchanged on both engines.

For *weakly* connected components on a directed graph the static data is
the symmetrised adjacency (labels must flow both ways); the helper
:func:`static_records` builds it.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..common.config import IterKeys, JobConf
from ..common.partition import ModPartitioner
from ..graph import Digraph
from ..imapreduce import MIN, AccumJob, AccumKernel, IterativeJob, Kernel
from ..imapreduce.accum import TOP_FRACTION_KEY

__all__ = [
    "initial_state",
    "static_records",
    "imr_map",
    "imr_reduce",
    "change_distance",
    "ComponentsKernel",
    "build_imr_job",
    "accum_update",
    "ComponentsAccumKernel",
    "accum_initial_deltas",
    "plan_delta",
    "churn_delta",
    "build_accum_job",
    "reference_components",
    "reference_iterations",
]


# ----------------------------------------------------------------- data --
def initial_state(graph: Digraph) -> list[tuple[int, int]]:
    """Every node starts labelled with its own id."""
    return [(u, u) for u in range(graph.num_nodes)]


def static_records(graph: Digraph) -> list[tuple[int, tuple]]:
    """Symmetrised adjacency: ``(u, (neighbours in either direction))``."""
    neighbors: list[set[int]] = [set() for _ in range(graph.num_nodes)]
    sources = np.repeat(np.arange(graph.num_nodes), np.diff(graph.indptr))
    for u, v in zip(sources.tolist(), graph.targets.tolist()):
        neighbors[u].add(v)
        neighbors[v].add(u)
    return [(u, tuple(sorted(neighbors[u]))) for u in range(graph.num_nodes)]


# ---------------------------------------------------------- iMapReduce --
def imr_map(key: int, label: int, neighbors: tuple | None, ctx) -> None:
    ctx.emit(key, label)
    if neighbors:
        for v in neighbors:
            ctx.emit(v, label)


def imr_reduce(key: int, values: list, ctx) -> None:
    ctx.emit(key, min(values))


def change_distance(key: Any, prev: int | None, curr: int) -> float:
    """Count of nodes whose label changed — 0 means converged."""
    if prev is None:
        return 1.0
    return 0.0 if prev == curr else 1.0


class ComponentsKernel(Kernel):
    """Vectorized label propagation over the symmetrised adjacency.

    Labels are integers and the ``min`` merge is order-independent, so
    the kernel is **bit-exact** against the record path, including the
    label-change count driving the ``threshold == 0`` termination.
    """

    __slots__ = ()

    merge = "min"
    state_dtype = "int64"

    def prepare(self, pair, owned_keys, static_table):
        neigh = [static_table.get(k) or () for k in owned_keys.tolist()]
        counts = np.array([len(t) for t in neigh], dtype=np.int64)
        total = int(counts.sum())
        targets = np.fromiter(
            (v for t in neigh for v in t), dtype=np.int64, count=total
        )
        src_local = np.repeat(np.arange(owned_keys.size), counts)
        return targets, src_local

    def map_kernel(self, pair, keys, values, prepared, broadcast):
        targets, src_local = prepared
        return (
            np.concatenate([keys, targets]),
            np.concatenate([values, values[src_local]]),
        )

    def distance_partial(self, keys, prev, curr):
        # Exact integer count of changed labels — safe to compare to the
        # ``threshold == 0.0`` convergence rule bit-for-bit.
        return float(np.count_nonzero(prev != curr))


def build_imr_job(
    *,
    state_path: str,
    static_path: str,
    output_path: str,
    max_iterations: int | None = None,
    converge: bool = True,
    num_pairs: int | None = None,
    use_kernel: bool = False,
) -> IterativeJob:
    conf = JobConf()
    conf.set(IterKeys.STATE_PATH, state_path)
    conf.set(IterKeys.STATIC_PATH, static_path)
    if max_iterations is not None:
        conf.set_int(IterKeys.MAX_ITER, max_iterations)
    if converge:
        conf.set_float(IterKeys.DIST_THRESH, 0.0)  # stop when no label moves
    return IterativeJob.single_phase(
        "components",
        imr_map,
        imr_reduce,
        conf=conf,
        output_path=output_path,
        distance_fn=change_distance if converge else None,
        partitioner=ModPartitioner(),
        combiner=imr_reduce,  # min is associative: always exact
        num_pairs=num_pairs,
        kernel=ComponentsKernel() if use_kernel else None,
    )


# ------------------------------------------------- accumulative (Maiter) --
def accum_update(key, delta, state, neighbors, emit) -> None:
    """Accumulative label flood: labels fold under ``min`` from the ∞
    identity; a node whose label improved offers the new label to its
    symmetrised neighbours.  Integer labels and a unique fixpoint make
    every schedule bit-identical."""
    if neighbors:
        for v in neighbors:
            emit(v, state)


class ComponentsAccumKernel(AccumKernel):
    """Columnar twin of :func:`accum_update`: int64 labels with the
    int64-max sentinel standing in for the record path's ∞ identity."""

    __slots__ = ()

    merge = "min"
    state_dtype = "int64"
    identity = np.iinfo(np.int64).max

    def prepare(self, pair, owned_keys, static_table):
        neigh = [static_table.get(k) or () for k in owned_keys.tolist()]
        counts = np.array([len(t) for t in neigh], dtype=np.int64)
        total = int(counts.sum())
        targets = np.fromiter(
            (v for t in neigh for v in t), dtype=np.int64, count=total
        )
        indptr = np.concatenate([[0], np.cumsum(counts)])
        return counts, indptr, targets

    def emit_deltas(self, pair, owned_keys, idx, deltas, states, prepared):
        counts, indptr, targets = prepared
        c = counts[idx]
        total = int(c.sum())
        if total == 0:
            return targets[:0], states[:0]
        reps = np.repeat(np.arange(idx.size), c)
        within = np.arange(total) - np.repeat(np.cumsum(c) - c, c)
        flat = indptr[idx][reps] + within
        return targets[flat], states[reps]


def accum_initial_deltas(graph_nodes: int) -> list[tuple[int, int]]:
    """Initial deltas: every node proposes its own id as its label."""
    return [(u, u) for u in range(graph_nodes)]


# ---------------------------------------------------- incremental (i2MR) --
def plan_delta(static_table: dict, delta, memo_state: dict):
    """Connected components' delta builder: patch the symmetric
    adjacency (both endpoint rows, re-sorted) and derive the min-algebra
    plan — label offers across inserted edges; a deleted edge may split
    its component, so the whole old component is conservatively reset
    and relabelled (see :mod:`repro.imapreduce.incremental`)."""
    from ..imapreduce.incremental import plan_changes

    return plan_changes("components", static_table, delta, memo_state)


def churn_delta(static_table: dict, *, insert: int = 0, delete: int = 0,
                seed: int = 0):
    """Seeded undirected edge churn against a components adjacency."""
    from ..imapreduce.incremental import random_edge_churn

    return random_edge_churn(
        static_table, "components", insert=insert, delete=delete, seed=seed
    )


def build_accum_job(
    *,
    state_path: str,
    static_path: str,
    output_path: str,
    max_rounds: int | None = None,
    num_pairs: int | None = None,
    top_fraction: float | None = None,
    use_kernel: bool = False,
) -> AccumJob:
    conf = JobConf()
    conf.set(IterKeys.STATE_PATH, state_path)
    conf.set(IterKeys.STATIC_PATH, static_path)
    if max_rounds is not None:
        conf.set_int(IterKeys.MAX_ITER, max_rounds)
    conf.set_float(IterKeys.DIST_THRESH, 0.0)  # min deltas drain exactly
    if top_fraction is not None:
        conf.set_float(TOP_FRACTION_KEY, top_fraction)
    return AccumJob(
        name="components-accum",
        accumulator=MIN,
        update_fn=accum_update,
        output_path=output_path,
        conf=conf,
        partitioner=ModPartitioner(),
        num_pairs=num_pairs,
        kernel=ComponentsAccumKernel() if use_kernel else None,
    )


# ------------------------------------------------------------ references --
def reference_components(graph: Digraph) -> np.ndarray:
    """Min-member label per weakly connected component (scipy)."""
    from scipy.sparse.csgraph import connected_components

    _n, labels = connected_components(graph.to_scipy_csr(), directed=True,
                                      connection="weak")
    out = np.empty(graph.num_nodes, dtype=np.int64)
    for comp in range(labels.max() + 1):
        members = np.where(labels == comp)[0]
        out[members] = members.min()
    return out


def reference_iterations(graph: Digraph, iterations: int) -> np.ndarray:
    """Exactly ``iterations`` synchronous label-propagation rounds."""
    labels = np.arange(graph.num_nodes, dtype=np.int64)
    sources = np.repeat(np.arange(graph.num_nodes), np.diff(graph.indptr))
    targets = graph.targets
    for _ in range(iterations):
        new = labels.copy()
        np.minimum.at(new, targets, labels[sources])
        np.minimum.at(new, sources, labels[targets])
        labels = new
    return labels
