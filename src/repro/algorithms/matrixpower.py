"""Matrix power computation Mᵏ (paper §5.2).

Each iteration multiplies the static matrix M into the iterated state
N (initially N = M), using the classic two-phase MapReduce matrix
multiplication the paper describes:

* **Phase 1** — map over N's elements ``((j, k), n_jk)`` emitting
  ``(j, (k, n_jk))``; reduce collects row *j* of N.  No static join.
* **Phase 2** — the static data is M *by column*: record
  ``(j, ((i, m_ij), …))``.  The map joins column *j* of M with row *j*
  of N and emits all products ``((i, k), m_ij · n_jk)``; reduce sums
  them into the product's element ``(i, k)``.

Phase 2's reduce output keys ``(i, k)`` feed phase 1 of the next
iteration through the persistent pair channels: the pair that reduced
key ``(i, k)`` is the pair whose map handles it next, so the one-to-one
contract holds (§5.2.2).
"""

from __future__ import annotations

import numpy as np

from ..common.config import IterKeys, JobConf
from ..imapreduce import IterativeJob, Phase
from ..mapreduce import Job
from ..mapreduce.driver import IterativeSpec

__all__ = [
    "matrix_to_state_records",
    "matrix_to_column_records",
    "records_to_matrix",
    "build_imr_job",
    "build_mr_spec",
    "reference_power",
]


# ----------------------------------------------------------------- data --
def matrix_to_state_records(matrix: np.ndarray) -> list[tuple[tuple[int, int], float]]:
    """N as element records ``((row, col), value)`` (zeros included, so
    every key persists across iterations)."""
    n, m = matrix.shape
    return [((i, j), float(matrix[i, j])) for i in range(n) for j in range(m)]


def matrix_to_column_records(matrix: np.ndarray) -> list[tuple[int, tuple]]:
    """M by column: ``(j, ((i, m_ij), …))`` — phase 2's static data."""
    n, m = matrix.shape
    return [
        (j, tuple((i, float(matrix[i, j])) for i in range(n))) for j in range(m)
    ]


def records_to_matrix(records, shape: tuple[int, int]) -> np.ndarray:
    out = np.zeros(shape)
    for (i, j), value in records:
        out[i, j] = value
    return out


# ---------------------------------------------------------- iMapReduce --
def phase1_map(key: tuple, value: float, static, ctx) -> None:
    j, k = key
    ctx.emit(j, (k, value))


def phase1_reduce(j: int, values: list, ctx) -> None:
    ctx.emit(j, tuple(sorted(values)))


def phase2_map(j: int, row_of_n: tuple, column_of_m: tuple | None, ctx) -> None:
    if not column_of_m:
        return
    for i, m_ij in column_of_m:
        for k, n_jk in row_of_n:
            ctx.emit((i, k), m_ij * n_jk)


def phase2_reduce(key: tuple, values: list, ctx) -> None:
    ctx.emit(key, sum(values))


def build_imr_job(
    *,
    state_path: str,
    static_path: str,
    output_path: str,
    max_iterations: int,
    num_pairs: int | None = None,
    checkpoint_interval: int | None = None,
) -> IterativeJob:
    conf = JobConf()
    conf.set(IterKeys.STATE_PATH, state_path)
    conf.set_int(IterKeys.MAX_ITER, max_iterations)
    if checkpoint_interval is not None:
        conf.set_int(IterKeys.CHECKPOINT_INTERVAL, checkpoint_interval)
    phases = [
        Phase(map_fn=phase1_map, reduce_fn=phase1_reduce, name="rows"),
        Phase(
            map_fn=phase2_map,
            reduce_fn=phase2_reduce,
            static_path=static_path,
            name="multiply",
        ),
    ]
    return IterativeJob(
        name="matrixpower",
        phases=phases,
        output_path=output_path,
        conf=conf,
        num_pairs=num_pairs,
    )


# ------------------------------------------------------------ MapReduce --
def matrix_to_mr_records(
    matrix: np.ndarray, tag: str
) -> list[tuple[tuple[int, int], tuple]]:
    """Baseline input format: ``((i, j), (tag, value))`` with tag "M"/"N"."""
    n, m = matrix.shape
    return [((i, j), (tag, float(matrix[i, j]))) for i in range(n) for j in range(m)]


def mr_records_to_matrix(records, shape: tuple[int, int]) -> np.ndarray:
    out = np.zeros(shape)
    for (i, j), (_tag, value) in records:
        out[i, j] = value
    return out


def _mr_phase1_map(key, value, ctx):
    # §5.2.1 Map 1: extract M's columns and N's rows onto key j.
    r, c = key
    tag, v = value
    if tag == "M":
        ctx.emit(c, ("M", r, v))
    else:
        ctx.emit(r, ("N", c, v))


def _mr_phase1_reduce(j, values, ctx):
    # §5.2.1 Reduce 1: join column j of M with row j of N.
    ctx.emit(j, tuple(sorted(values)))


def _mr_phase2_map(j, joined, ctx):
    # §5.2.1 Map 2: all pairwise products.
    ms = [(i, v) for tag, i, v in joined if tag == "M"]
    ns = [(k, v) for tag, k, v in joined if tag == "N"]
    for i, m_ij in ms:
        for k, n_jk in ns:
            ctx.emit((i, k), m_ij * n_jk)


def _mr_phase2_reduce(key, values, ctx):
    # §5.2.1 Reduce 2: sum into p_ik; re-tag as N for the next iteration.
    ctx.emit(key, ("N", sum(values)))


def build_mr_spec(
    *,
    m_path: str,
    output_prefix: str,
    max_iterations: int,
    num_reduces: int = 4,
) -> IterativeSpec:
    """Baseline: TWO chained MapReduce jobs per logical iteration
    (§5.2.1), with M re-read and re-shuffled from the DFS every time.
    The driver's step counter advances twice per multiplication."""

    def job_factory(step: int, input_paths: list[str]) -> Job:
        iteration, phase = divmod(step, 2)
        if phase == 0:
            return Job(
                name=f"mpower-{iteration}-join",
                mapper=_mr_phase1_map,
                reducer=_mr_phase1_reduce,
                input_paths=[m_path] + list(input_paths),
                output_path=f"{output_prefix}/join{iteration}",
                num_reduces=num_reduces,
            )
        return Job(
            name=f"mpower-{iteration}-multiply",
            mapper=_mr_phase2_map,
            reducer=_mr_phase2_reduce,
            input_paths=input_paths,
            output_path=f"{output_prefix}/mult{iteration}",
            num_reduces=num_reduces,
        )

    return IterativeSpec(
        name="matrixpower",
        job_factory=job_factory,
        max_iterations=max_iterations * 2,  # two jobs per logical iteration
    )


# ------------------------------------------------------------ references --
def reference_power(matrix: np.ndarray, power: int) -> np.ndarray:
    return np.linalg.matrix_power(matrix, power)
