"""Jacobi iteration for linear systems (paper §5.1).

The paper names Jacobi — x⁽ᵏ⁺¹⁾ = D⁻¹(b − R·x⁽ᵏ⁾) — as the archetypal
algorithm needing the one-to-all mapping: "each reducer calculates a part
of the iterated vector, and all mappers need the intact vector x".

Record formats:

* static: ``(i, (d_ii, b_i, ((j, a_ij), …)))`` — row *i*'s diagonal,
  right-hand side, and off-diagonal entries;
* state:  ``(i, x_i)`` — broadcast from every reduce to every map.

The map computes row *i*'s update from the full broadcast vector; the
reduce is the identity (one value per key).  Termination uses the
Manhattan distance between iterates, as in the paper's §3.1.2.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..common.config import IterKeys, JobConf
from ..common.partition import ModPartitioner
from ..imapreduce import IterativeJob, Kernel

__all__ = [
    "make_system",
    "system_to_static_records",
    "initial_state",
    "imr_map",
    "imr_reduce",
    "manhattan_distance",
    "JacobiKernel",
    "build_imr_job",
    "reference_iterations",
    "reference_solution",
]


# ----------------------------------------------------------------- data --
def make_system(
    n: int, density: float = 0.2, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """A random strictly diagonally dominant system (Jacobi converges)."""
    rng = np.random.default_rng(seed)
    a = rng.uniform(-1.0, 1.0, size=(n, n)) * (rng.random((n, n)) < density)
    np.fill_diagonal(a, 0.0)
    dominance = np.abs(a).sum(axis=1) + rng.uniform(0.5, 1.5, size=n)
    signs = rng.choice([-1.0, 1.0], size=n)
    a[np.arange(n), np.arange(n)] = dominance * signs
    b = rng.uniform(-1.0, 1.0, size=n)
    return a, b


def system_to_static_records(a: np.ndarray, b: np.ndarray) -> list[tuple[int, tuple]]:
    n = len(b)
    records = []
    for i in range(n):
        off_diag = tuple(
            (j, float(a[i, j])) for j in range(n) if j != i and a[i, j] != 0.0
        )
        records.append((i, (float(a[i, i]), float(b[i]), off_diag)))
    return records


def initial_state(n: int) -> list[tuple[int, float]]:
    return [(i, 0.0) for i in range(n)]


# ---------------------------------------------------------- iMapReduce --
def imr_map(i: int, x_broadcast: list, row: tuple, ctx) -> None:
    """Row i's update needs the intact vector x (one-to-all, §5.1)."""
    d_ii, b_i, off_diag = row
    x = dict(x_broadcast)
    acc = b_i
    for j, a_ij in off_diag:
        acc -= a_ij * x[j]
    ctx.emit(i, acc / d_ii)


def imr_reduce(i: int, values: list, ctx) -> None:
    ctx.emit(i, values[0])


def manhattan_distance(key: Any, prev: float | None, curr: float) -> float:
    return abs((prev or 0.0) - curr)


class JacobiKernel(Kernel):
    """Vectorized Jacobi sweep.

    The record map rebuilds ``dict(x_broadcast)`` for *every row* —
    O(n²) dict work per iteration, the dominant record-path cost.  Here
    the broadcast positions of each row's off-diagonal columns are
    resolved once (the key universe never changes) and each sweep is a
    gather + ``np.subtract.at`` segment fold.  Each key receives exactly
    one contribution, so the ``sum`` merge never actually adds floats;
    the map arithmetic itself is reassociated, hence tolerance oracle.
    """

    __slots__ = ()

    merge = "sum"
    needs_broadcast = True

    def prepare(self, pair, owned_keys, static_table):
        rows = [static_table[k] for k in owned_keys.tolist()]
        d = np.array([r[0] for r in rows], dtype=np.float64)
        b = np.array([r[1] for r in rows], dtype=np.float64)
        counts = np.array([len(r[2]) for r in rows], dtype=np.int64)
        total = int(counts.sum())
        cols = np.fromiter(
            (ja[0] for r in rows for ja in r[2]), dtype=np.int64, count=total
        )
        avals = np.fromiter(
            (ja[1] for r in rows for ja in r[2]), dtype=np.float64, count=total
        )
        row_local = np.repeat(np.arange(owned_keys.size), counts)
        # ``col_pos`` (cols resolved against the broadcast key array) is
        # filled lazily on the first sweep — the broadcast keys are the
        # job's fixed key universe, so the positions never change.
        return {"d": d, "b": b, "cols": cols, "avals": avals,
                "row_local": row_local, "col_pos": None}

    def map_kernel(self, pair, keys, values, prepared, broadcast):
        bkeys, bvals = broadcast
        if prepared["col_pos"] is None:
            prepared["col_pos"] = np.searchsorted(bkeys, prepared["cols"])
        acc = prepared["b"].copy()
        contrib = prepared["avals"] * bvals[prepared["col_pos"]]
        np.subtract.at(acc, prepared["row_local"], contrib)
        return keys, acc / prepared["d"]

    def distance_partial(self, keys, prev, curr):
        return float(np.abs(prev - curr).sum())


def build_imr_job(
    *,
    state_path: str,
    static_path: str,
    output_path: str,
    max_iterations: int | None = None,
    threshold: float | None = None,
    num_pairs: int | None = None,
    use_kernel: bool = False,
) -> IterativeJob:
    conf = JobConf()
    conf.set(IterKeys.STATE_PATH, state_path)
    conf.set(IterKeys.STATIC_PATH, static_path)
    conf.set(IterKeys.MAPPING, "one2all")  # §5.1: mappers need all of x
    if max_iterations is not None:
        conf.set_int(IterKeys.MAX_ITER, max_iterations)
    if threshold is not None:
        conf.set_float(IterKeys.DIST_THRESH, threshold)
    return IterativeJob.single_phase(
        "jacobi",
        imr_map,
        imr_reduce,
        conf=conf,
        output_path=output_path,
        distance_fn=manhattan_distance if threshold is not None else None,
        partitioner=ModPartitioner(),
        num_pairs=num_pairs,
        kernel=JacobiKernel() if use_kernel else None,
    )


# ------------------------------------------------------------ references --
def reference_iterations(
    a: np.ndarray, b: np.ndarray, iterations: int
) -> np.ndarray:
    """Exactly ``iterations`` Jacobi sweeps (numpy)."""
    d = np.diag(a)
    r = a - np.diag(d)
    x = np.zeros(len(b))
    for _ in range(iterations):
        x = (b - r @ x) / d
    return x


def reference_solution(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """The exact solution via numpy's solver."""
    return np.linalg.solve(a, b)
