"""PageRank (paper §2.1.2, Eq. 1).

Per iteration every node keeps ``(1−d)/|V|`` and distributes
``d·R(u)/|N⁺(u)|`` to each out-neighbour — exactly the paper's update,
including its rank leak at dangling nodes (the evaluation graphs have
none; the generators default to min out-degree 1).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..common.config import IterKeys, JobConf
from ..common.partition import ModPartitioner
from ..graph import Digraph
from ..imapreduce import AccumJob, AccumKernel, IterativeJob, Kernel, SUM
from ..imapreduce.accum import TOP_FRACTION_KEY
from ..mapreduce import Job
from ..mapreduce.driver import IterativeSpec

__all__ = [
    "DAMPING",
    "initial_state",
    "static_records",
    "make_imr_map",
    "imr_reduce",
    "manhattan_distance",
    "PageRankKernel",
    "build_imr_job",
    "PageRankAccumUpdate",
    "PageRankAccumKernel",
    "accum_initial_deltas",
    "plan_delta",
    "churn_delta",
    "build_accum_job",
    "mr_initial_records",
    "make_mr_mapper",
    "mr_reducer",
    "mr_combiner",
    "build_mr_spec",
    "reference_iterations",
    "reference_networkx",
]

#: The customary damping factor the paper's example code uses.
DAMPING = 0.8


# ----------------------------------------------------------------- data --
def initial_state(graph: Digraph) -> list[tuple[int, float]]:
    """R⁽⁰⁾(v) = 1/|V| for every node."""
    n = graph.num_nodes
    return [(u, 1.0 / n) for u in range(n)]


def static_records(graph: Digraph) -> list[tuple[int, tuple]]:
    """Static records: each node's out-neighbour set ``(v, …)``."""
    if graph.weighted:
        raise ValueError("PageRank uses an unweighted graph")
    return list(graph.static_records())


# ---------------------------------------------------------- iMapReduce --
class PageRankMap:
    """The paper's Fig. 3 map: retain (1−d)/N, share d·R(u)/|N⁺(u)|.

    A module-level callable (not a closure) so a built job pickles and
    can ship to the multiprocess backend's worker processes.
    """

    __slots__ = ("num_nodes", "damping")

    def __init__(self, num_nodes: int, damping: float = DAMPING):
        self.num_nodes = num_nodes
        self.damping = damping

    def __call__(self, key: int, rank: float, neighbors: tuple | None, ctx) -> None:
        ctx.emit(key, (1.0 - self.damping) / self.num_nodes)
        if neighbors:
            share = self.damping * rank / len(neighbors)
            for v in neighbors:
                ctx.emit(v, share)


def make_imr_map(num_nodes: int, damping: float = DAMPING):
    return PageRankMap(num_nodes, damping)


def imr_reduce(key: int, values: list, ctx) -> None:
    ctx.emit(key, sum(values))


def imr_combine(key: int, values: list, ctx) -> None:
    """Sum is associative, so a map-side combiner is exact."""
    ctx.emit(key, sum(values))


def manhattan_distance(key: Any, prev: float | None, curr: float) -> float:
    """The paper's Fig. 3 distance: Manhattan between iterations."""
    if prev is None:
        return abs(curr)
    return abs(prev - curr)


class PageRankKernel(Kernel):
    """Vectorized PageRank: one array expression per pair per iteration.

    ``prepare`` builds the pair's CSR-style out-adjacency once at
    partition load (§3.2: static data is resident, never re-shuffled);
    ``map_kernel`` evaluates every retain and share emission at once.
    The share values are bitwise-equal to :class:`PageRankMap`'s
    (``d·R(u)/|N⁺(u)|`` elementwise), but the ``sum`` merge reorders the
    float additions, so the record path is a tolerance reference.
    """

    __slots__ = ("num_nodes", "damping")

    merge = "sum"

    def __init__(self, num_nodes: int, damping: float = DAMPING):
        self.num_nodes = num_nodes
        self.damping = damping

    def prepare(self, pair, owned_keys, static_table):
        neigh = [static_table.get(k) or () for k in owned_keys.tolist()]
        counts = np.array([len(t) for t in neigh], dtype=np.int64)
        total = int(counts.sum())
        targets = np.fromiter(
            (v for t in neigh for v in t), dtype=np.int64, count=total
        )
        src_local = np.repeat(np.arange(owned_keys.size), counts)
        return counts, targets, src_local

    def map_kernel(self, pair, keys, values, prepared, broadcast):
        counts, targets, src_local = prepared
        retain = np.full(keys.size, (1.0 - self.damping) / self.num_nodes)
        shares = self.damping * values[src_local] / counts[src_local]
        return (
            np.concatenate([keys, targets]),
            np.concatenate([retain, shares]),
        )

    def distance_partial(self, keys, prev, curr):
        return float(np.abs(prev - curr).sum())


def build_imr_job(
    graph_nodes: int,
    *,
    state_path: str,
    static_path: str,
    output_path: str,
    max_iterations: int | None = None,
    threshold: float | None = None,
    num_pairs: int | None = None,
    sync: bool = False,
    damping: float = DAMPING,
    combiner: bool = False,
    checkpoint_interval: int | None = None,
    buffer_records: int | None = None,
    use_kernel: bool = False,
) -> IterativeJob:
    conf = JobConf()
    conf.set(IterKeys.STATE_PATH, state_path)
    conf.set(IterKeys.STATIC_PATH, static_path)
    if max_iterations is not None:
        conf.set_int(IterKeys.MAX_ITER, max_iterations)
    if threshold is not None:
        conf.set_float(IterKeys.DIST_THRESH, threshold)
    if sync:
        conf.set_boolean(IterKeys.SYNC, True)
    if checkpoint_interval is not None:
        conf.set_int(IterKeys.CHECKPOINT_INTERVAL, checkpoint_interval)
    if buffer_records is not None:
        conf.set_int(IterKeys.BUFFER_RECORDS, buffer_records)
    return IterativeJob.single_phase(
        "pagerank",
        make_imr_map(graph_nodes, damping),
        imr_reduce,
        conf=conf,
        output_path=output_path,
        distance_fn=manhattan_distance if threshold is not None else None,
        partitioner=ModPartitioner(),
        combiner=imr_combine if combiner else None,
        num_pairs=num_pairs,
        kernel=PageRankKernel(graph_nodes, damping) if use_kernel else None,
    )


# ------------------------------------------------- accumulative (Maiter) --
class PageRankAccumUpdate:
    """Maiter §3's accumulative PageRank update.

    State starts at 0 and accumulates under ``+``: the initial delta is
    every node's retained ``(1−d)/N``, and applying a delta ``Δ`` at
    ``u`` forwards ``d·Δ/|N⁺(u)|`` to each out-neighbour.  The fixpoint
    ``Σₖ (dM)ᵏ·b`` is exactly Eq. 1's, including the dangling-node rank
    leak (no out-neighbours → nothing forwarded).  Module-level class so
    built jobs pickle to the worker processes.
    """

    __slots__ = ("damping",)

    def __init__(self, damping: float = DAMPING):
        self.damping = damping

    def __call__(self, key, delta, state, neighbors, emit) -> None:
        if neighbors:
            share = self.damping * delta / len(neighbors)
            for v in neighbors:
                emit(v, share)


class PageRankAccumKernel(AccumKernel):
    """Columnar twin of :class:`PageRankAccumUpdate`: the applied
    deltas' shares are expanded through the pair's CSR out-adjacency in
    one gather (bitwise-equal share values; the pending ``+`` coalesce
    reorders float additions, so the record path is a tolerance
    reference, same as the synchronous kernels)."""

    __slots__ = ("damping",)

    merge = "sum"
    state_dtype = "float64"
    identity = 0.0

    def __init__(self, damping: float = DAMPING):
        self.damping = damping

    def prepare(self, pair, owned_keys, static_table):
        neigh = [static_table.get(k) or () for k in owned_keys.tolist()]
        counts = np.array([len(t) for t in neigh], dtype=np.int64)
        total = int(counts.sum())
        targets = np.fromiter(
            (v for t in neigh for v in t), dtype=np.int64, count=total
        )
        indptr = np.concatenate([[0], np.cumsum(counts)])
        return counts, indptr, targets

    def emit_deltas(self, pair, owned_keys, idx, deltas, states, prepared):
        counts, indptr, targets = prepared
        c = counts[idx]
        total = int(c.sum())
        if total == 0:
            return targets[:0], deltas[:0]
        # Multi-range CSR gather: edge rows of the applied sources, in
        # application order (matching the record update's emit order).
        reps = np.repeat(np.arange(idx.size), c)
        within = np.arange(total) - np.repeat(np.cumsum(c) - c, c)
        flat = indptr[idx][reps] + within
        shares = np.zeros(idx.size)
        nonzero = c > 0
        np.divide(
            self.damping * deltas, c, out=shares, where=nonzero
        )
        return targets[flat], np.repeat(shares, c)


def accum_initial_deltas(
    graph_nodes: int, damping: float = DAMPING
) -> list[tuple[int, float]]:
    """Initial deltas: every node's retained rank ``(1−d)/N``."""
    return [(u, (1.0 - damping) / graph_nodes) for u in range(graph_nodes)]


# ---------------------------------------------------- incremental (i2MR) --
def plan_delta(static_table: dict, delta, memo_state: dict, *,
               damping: float = DAMPING):
    """PageRank's delta builder: patch the adjacency table in place and
    derive the residual-injection plan ``d·(M_new − M_old)ᵀ·x*`` (see
    :mod:`repro.imapreduce.incremental` — sum-algebra propagation)."""
    from ..imapreduce.incremental import plan_changes

    return plan_changes(
        "pagerank", static_table, delta, memo_state, damping=damping
    )


def churn_delta(static_table: dict, *, insert: int = 0, delete: int = 0,
                seed: int = 0):
    """Seeded edge churn against a PageRank adjacency table."""
    from ..imapreduce.incremental import random_edge_churn

    return random_edge_churn(
        static_table, "pagerank", insert=insert, delete=delete, seed=seed
    )


def build_accum_job(
    *,
    state_path: str,
    static_path: str,
    output_path: str,
    threshold: float | None = None,
    max_rounds: int | None = None,
    num_pairs: int | None = None,
    damping: float = DAMPING,
    top_fraction: float | None = None,
    use_kernel: bool = False,
) -> AccumJob:
    conf = JobConf()
    conf.set(IterKeys.STATE_PATH, state_path)
    conf.set(IterKeys.STATIC_PATH, static_path)
    if max_rounds is not None:
        conf.set_int(IterKeys.MAX_ITER, max_rounds)
    if threshold is not None:
        conf.set_float(IterKeys.DIST_THRESH, threshold)
    if top_fraction is not None:
        conf.set_float(TOP_FRACTION_KEY, top_fraction)
    return AccumJob(
        name="pagerank-accum",
        accumulator=SUM,
        update_fn=PageRankAccumUpdate(damping),
        output_path=output_path,
        conf=conf,
        partitioner=ModPartitioner(),
        num_pairs=num_pairs,
        kernel=PageRankAccumKernel(damping) if use_kernel else None,
    )


# ------------------------------------------------------------ MapReduce --
def mr_initial_records(graph: Digraph) -> list[tuple[int, tuple]]:
    """Baseline records: ``(u, (R(u), N⁺(u)))`` — rank plus adjacency."""
    n = graph.num_nodes
    adjacency = dict(static_records(graph))
    return [(u, (1.0 / n, adjacency[u])) for u in range(n)]


def make_mr_mapper(num_nodes: int, damping: float = DAMPING):
    def mr_mapper(key: int, value: tuple, ctx) -> None:
        rank, neighbors = value
        ctx.emit(key, ("node", (1.0 - damping) / num_nodes, neighbors))
        if neighbors:
            share = damping * rank / len(neighbors)
            for v in neighbors:
                ctx.emit(v, ("share", share))

    return mr_mapper


def mr_reducer(key: int, values: list, ctx) -> None:
    rank = 0.0
    neighbors: tuple = ()
    for value in values:
        rank += value[1]
        if value[0] == "node":
            neighbors = value[2]
    ctx.emit(key, (rank, neighbors))


def mr_combiner(key: int, values: list, ctx) -> None:
    """Map-side aggregation for the baseline: partial rank sums are
    exact; the (single) node record passes through with its own share."""
    partial = 0.0
    for value in values:
        if value[0] == "node":
            ctx.emit(key, value)
        else:
            partial += value[1]
    if partial:
        ctx.emit(key, ("share", partial))


def _diff_mapper(key, value, ctx):
    rank = value[0] if isinstance(value, tuple) else value
    ctx.emit(key, rank)


def _diff_reducer(key, values, ctx):
    ctx.increment("distance", abs(values[0] - values[-1]))


def build_mr_spec(
    graph_nodes: int,
    *,
    output_prefix: str,
    max_iterations: int,
    threshold: float | None = None,
    num_reduces: int = 4,
    damping: float = DAMPING,
    combiner: bool = False,
) -> IterativeSpec:
    def job_factory(iteration: int, input_paths: list[str]) -> Job:
        return Job(
            name=f"pagerank-{iteration}",
            mapper=make_mr_mapper(graph_nodes, damping),
            reducer=mr_reducer,
            combiner=mr_combiner if combiner else None,
            input_paths=input_paths,
            output_path=f"{output_prefix}/iter{iteration}",
            num_reduces=num_reduces,
            partitioner=ModPartitioner(),
        )

    def convergence_factory(iteration, prev_paths, curr_paths) -> Job:
        return Job(
            name=f"pagerank-check-{iteration}",
            mapper=_diff_mapper,
            reducer=_diff_reducer,
            input_paths=list(prev_paths) + list(curr_paths),
            output_path=f"{output_prefix}/check{iteration}",
            num_reduces=num_reduces,
            partitioner=ModPartitioner(),
        )

    return IterativeSpec(
        name="pagerank",
        job_factory=job_factory,
        max_iterations=max_iterations,
        threshold=threshold,
        convergence_factory=convergence_factory if threshold is not None else None,
    )


# ------------------------------------------------------------ references --
def reference_iterations(
    graph: Digraph, iterations: int, damping: float = DAMPING
) -> np.ndarray:
    """Exactly ``iterations`` applications of Eq. 1 (numpy)."""
    n = graph.num_nodes
    rank = np.full(n, 1.0 / n)
    degrees = np.maximum(graph.out_degree(), 1)
    sources = np.repeat(np.arange(n), np.diff(graph.indptr))
    targets = graph.targets
    has_out = graph.out_degree() > 0
    for _ in range(iterations):
        shares = damping * rank[sources] / degrees[sources]
        new = np.full(n, (1.0 - damping) / n)
        np.add.at(new, targets, shares)
        # Dangling nodes emit no shares (Eq. 1 leaks their rank),
        # mirroring the engine implementations exactly.
        rank = new
        _ = has_out  # documented: no dangling redistribution
    return rank


def reference_networkx(graph: Digraph, damping: float = DAMPING) -> np.ndarray:
    """Converged PageRank via networkx (no dangling nodes assumed)."""
    import networkx as nx

    result = nx.pagerank(graph.to_networkx(), alpha=damping, tol=1e-12, max_iter=500)
    return np.array([result[u] for u in range(graph.num_nodes)])
