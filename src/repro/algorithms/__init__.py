"""Algorithm library: each workload with iMapReduce, Hadoop-baseline and
reference implementations, plus input-preparation helpers."""

from . import components, inputs, jacobi, kmeans, matrixpower, pagerank, sssp
from .inputs import prepare_pagerank_inputs, prepare_sssp_inputs

__all__ = [
    "components",
    "inputs",
    "jacobi",
    "kmeans",
    "matrixpower",
    "pagerank",
    "sssp",
    "prepare_pagerank_inputs",
    "prepare_sssp_inputs",
]
