"""Single-Source Shortest Path (paper §2.1.1).

The iterative scheme is synchronous Bellman–Ford / breadth-first
relaxation: each iteration every node offers ``d(u) + W(u, v)`` to each
out-neighbour and keeps the minimum of the offers and its own distance.

Three implementations, all with identical per-iteration semantics:

* :func:`build_imr_job` — iMapReduce (state = distances, static =
  weighted adjacency, the paper's formulation);
* :func:`build_mr_spec` — the Hadoop-style job chain where each record
  carries *both* the distance and the adjacency list (static data
  re-shuffled every iteration — the paper's baseline);
* :func:`reference_iterations` / :func:`reference_exact` — vectorised
  numpy / scipy oracles.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from ..common.config import IterKeys, JobConf
from ..common.partition import ModPartitioner
from ..graph import Digraph
from ..imapreduce import MIN, AccumJob, AccumKernel, IterativeJob, Kernel
from ..imapreduce.accum import TOP_FRACTION_KEY
from ..mapreduce import Job
from ..mapreduce.driver import IterativeSpec

__all__ = [
    "INFINITY",
    "initial_state",
    "static_records",
    "imr_map",
    "imr_reduce",
    "manhattan_distance",
    "SsspKernel",
    "build_imr_job",
    "accum_update",
    "SsspAccumKernel",
    "accum_initial_deltas",
    "plan_delta",
    "churn_delta",
    "build_accum_job",
    "mr_initial_records",
    "mr_mapper",
    "mr_reducer",
    "mr_combiner",
    "build_mr_spec",
    "reference_iterations",
    "reference_exact",
]

INFINITY = math.inf


# ----------------------------------------------------------------- data --
def initial_state(graph: Digraph, source: int) -> list[tuple[int, float]]:
    """State records: the source at distance 0, everyone else at ∞."""
    return [(u, 0.0 if u == source else INFINITY) for u in range(graph.num_nodes)]


def static_records(graph: Digraph) -> list[tuple[int, tuple]]:
    """Static records: each node's weighted out-adjacency ``((v, w), …)``."""
    if not graph.weighted:
        raise ValueError("SSSP needs a weighted graph")
    return list(graph.static_records())


# ---------------------------------------------------------- iMapReduce --
def imr_map(key: int, distance: float, adjacency: tuple | None, ctx) -> None:
    """Offer ``d(u) + W(u, v)`` to each neighbour; keep own distance."""
    ctx.emit(key, distance)
    if adjacency and distance != INFINITY:
        for v, w in adjacency:
            ctx.emit(v, distance + w)


def imr_reduce(key: int, values: list, ctx) -> None:
    ctx.emit(key, min(values))


def imr_combine(key: int, values: list, ctx) -> None:
    """Min is associative, so a map-side combiner is exact."""
    ctx.emit(key, min(values))


def manhattan_distance(key: Any, prev: float | None, curr: float) -> float:
    """|prev − curr| with ∞-aware semantics (unreached stays unreached)."""
    if prev is None:
        return 0.0 if curr == INFINITY else abs(curr)
    if prev == INFINITY and curr == INFINITY:
        return 0.0
    if prev == INFINITY or curr == INFINITY:
        return INFINITY
    return abs(prev - curr)


class SsspKernel(Kernel):
    """Vectorized Bellman–Ford relaxation.

    Offers ``d(u) + W(u, v)`` are the identical float additions the
    record path performs, and the ``min`` merge is order-independent, so
    this kernel is **bit-exact** against the record path — the
    differential tests assert record-for-record equality.
    """

    __slots__ = ()

    merge = "min"

    def prepare(self, pair, owned_keys, static_table):
        adj = [static_table.get(k) or () for k in owned_keys.tolist()]
        counts = np.array([len(t) for t in adj], dtype=np.int64)
        total = int(counts.sum())
        targets = np.fromiter(
            (vw[0] for t in adj for vw in t), dtype=np.int64, count=total
        )
        weights = np.fromiter(
            (vw[1] for t in adj for vw in t), dtype=np.float64, count=total
        )
        src_local = np.repeat(np.arange(owned_keys.size), counts)
        return targets, weights, src_local

    def map_kernel(self, pair, keys, values, prepared, broadcast):
        targets, weights, src_local = prepared
        # Only reached nodes make offers (the record map's ∞ guard).
        reachable = np.isfinite(values[src_local])
        offers = values[src_local][reachable] + weights[reachable]
        return (
            np.concatenate([keys, targets[reachable]]),
            np.concatenate([values, offers]),
        )

    def distance_partial(self, keys, prev, curr):
        # ∞-aware Manhattan: both ∞ → 0, one ∞ → ∞, else |prev − curr|
        # (matches :func:`manhattan_distance`; ∞−∞ would be NaN).
        both_inf = np.isinf(prev) & np.isinf(curr)
        with np.errstate(invalid="ignore"):  # ∞−∞ lanes are masked out
            diff = np.where(both_inf, 0.0, np.abs(prev - curr))
        return float(diff.sum())


def build_imr_job(
    *,
    state_path: str,
    static_path: str,
    output_path: str,
    max_iterations: int | None = None,
    threshold: float | None = None,
    num_pairs: int | None = None,
    sync: bool = False,
    combiner: bool = False,
    checkpoint_interval: int | None = None,
    buffer_records: int | None = None,
    use_kernel: bool = False,
) -> IterativeJob:
    """The paper's SSSP job on the iMapReduce engine."""
    conf = JobConf()
    conf.set(IterKeys.STATE_PATH, state_path)
    conf.set(IterKeys.STATIC_PATH, static_path)
    if max_iterations is not None:
        conf.set_int(IterKeys.MAX_ITER, max_iterations)
    if threshold is not None:
        conf.set_float(IterKeys.DIST_THRESH, threshold)
    if sync:
        conf.set_boolean(IterKeys.SYNC, True)
    if checkpoint_interval is not None:
        conf.set_int(IterKeys.CHECKPOINT_INTERVAL, checkpoint_interval)
    if buffer_records is not None:
        conf.set_int(IterKeys.BUFFER_RECORDS, buffer_records)
    return IterativeJob.single_phase(
        "sssp",
        imr_map,
        imr_reduce,
        conf=conf,
        output_path=output_path,
        distance_fn=manhattan_distance if threshold is not None else None,
        partitioner=ModPartitioner(),
        combiner=imr_combine if combiner else None,
        num_pairs=num_pairs,
        kernel=SsspKernel() if use_kernel else None,
    )


# ------------------------------------------------- accumulative (Maiter) --
def accum_update(key, delta, state, adjacency, emit) -> None:
    """Maiter-mode SSSP: distances accumulate under ``min`` from the ∞
    identity; an improved distance re-offers ``d(u) + W(u, v)`` to each
    out-neighbour.  The engine only calls this when the merge *changed*
    the state, so converged nodes never re-offer — asynchronous
    Bellman–Ford with the label-correcting work saving."""
    if adjacency:
        for v, w in adjacency:
            emit(v, state + w)


class SsspAccumKernel(AccumKernel):
    """Columnar twin of :func:`accum_update` — offers are the identical
    float additions and ``min`` is order-independent, so the kernel is
    bit-exact against the record-level delta engine."""

    __slots__ = ()

    merge = "min"
    state_dtype = "float64"
    identity = np.inf

    def prepare(self, pair, owned_keys, static_table):
        adj = [static_table.get(k) or () for k in owned_keys.tolist()]
        counts = np.array([len(t) for t in adj], dtype=np.int64)
        total = int(counts.sum())
        targets = np.fromiter(
            (vw[0] for t in adj for vw in t), dtype=np.int64, count=total
        )
        weights = np.fromiter(
            (vw[1] for t in adj for vw in t), dtype=np.float64, count=total
        )
        indptr = np.concatenate([[0], np.cumsum(counts)])
        return counts, indptr, targets, weights

    def emit_deltas(self, pair, owned_keys, idx, deltas, states, prepared):
        counts, indptr, targets, weights = prepared
        c = counts[idx]
        total = int(c.sum())
        if total == 0:
            return targets[:0], weights[:0]
        reps = np.repeat(np.arange(idx.size), c)
        within = np.arange(total) - np.repeat(np.cumsum(c) - c, c)
        flat = indptr[idx][reps] + within
        return targets[flat], states[reps] + weights[flat]


def accum_initial_deltas(source: int) -> list[tuple[int, float]]:
    """One initial delta: the source at distance 0 (everything else
    starts at the ``min`` identity, ∞)."""
    return [(source, 0.0)]


# ---------------------------------------------------- incremental (i2MR) --
def plan_delta(static_table: dict, delta, memo_state: dict, *, source: int = 0):
    """SSSP's delta builder: patch the weighted adjacency in place and
    derive the min-algebra plan — monotone offers for inserted/cheaper
    edges, conservative forward-reachable invalidation for deleted or
    costlier ones (see :mod:`repro.imapreduce.incremental`)."""
    from ..imapreduce.incremental import plan_changes

    return plan_changes("sssp", static_table, delta, memo_state, source=source)


def churn_delta(static_table: dict, *, insert: int = 0, delete: int = 0,
                update: int = 0, seed: int = 0, monotone: bool = False):
    """Seeded edge churn against an SSSP adjacency table
    (``monotone=True`` turns deletions into weight decreases)."""
    from ..imapreduce.incremental import random_edge_churn

    return random_edge_churn(
        static_table, "sssp", insert=insert, delete=delete, update=update,
        seed=seed, monotone=monotone,
    )


def build_accum_job(
    *,
    state_path: str,
    static_path: str,
    output_path: str,
    threshold: float = 0.0,
    max_rounds: int | None = None,
    num_pairs: int | None = None,
    top_fraction: float | None = None,
    use_kernel: bool = False,
) -> AccumJob:
    """SSSP as an accumulative job.  ``min`` deltas drain completely —
    the default threshold 0.0 stops exactly at the fixpoint, which is
    unique, so every schedule (sync, async, any worker count) produces
    bit-identical distances."""
    conf = JobConf()
    conf.set(IterKeys.STATE_PATH, state_path)
    conf.set(IterKeys.STATIC_PATH, static_path)
    if max_rounds is not None:
        conf.set_int(IterKeys.MAX_ITER, max_rounds)
    conf.set_float(IterKeys.DIST_THRESH, threshold)
    if top_fraction is not None:
        conf.set_float(TOP_FRACTION_KEY, top_fraction)
    return AccumJob(
        name="sssp-accum",
        accumulator=MIN,
        update_fn=accum_update,
        output_path=output_path,
        conf=conf,
        partitioner=ModPartitioner(),
        num_pairs=num_pairs,
        kernel=SsspAccumKernel() if use_kernel else None,
    )


# ------------------------------------------------------------ MapReduce --
def mr_initial_records(graph: Digraph, source: int) -> list[tuple[int, tuple]]:
    """Baseline input records: ``(u, (d(u), adjacency))`` — the distance
    and the static adjacency travel together (§2.1.1)."""
    adjacency = dict(static_records(graph))
    return [
        (u, (0.0 if u == source else INFINITY, adjacency[u]))
        for u in range(graph.num_nodes)
    ]


def mr_mapper(key: int, value: tuple, ctx) -> None:
    distance, adjacency = value
    # Keep the node alive and carry the static adjacency through the
    # shuffle (the overhead iMapReduce eliminates).
    ctx.emit(key, ("node", distance, adjacency))
    if distance != INFINITY:
        for v, w in adjacency:
            ctx.emit(v, ("offer", distance + w))


def mr_reducer(key: int, values: list, ctx) -> None:
    best = INFINITY
    adjacency: tuple = ()
    for value in values:
        if value[0] == "node":
            best = min(best, value[1])
            adjacency = value[2]
        else:
            best = min(best, value[1])
    ctx.emit(key, (best, adjacency))


def mr_combiner(key: int, values: list, ctx) -> None:
    """Map-side aggregation for the baseline: min over the offers is
    exact; the (single) node record passes through unchanged."""
    best_offer = INFINITY
    for value in values:
        if value[0] == "node":
            ctx.emit(key, value)
            best_offer = min(best_offer, value[1])
        else:
            best_offer = min(best_offer, value[1])
    if best_offer != INFINITY:
        ctx.emit(key, ("offer", best_offer))


def _diff_mapper(key, value, ctx):
    distance = value[0] if isinstance(value, tuple) else value
    ctx.emit(key, distance)


def _diff_reducer(key, values, ctx):
    ctx.increment("distance", manhattan_distance(key, values[0], values[-1]))


def build_mr_spec(
    *,
    output_prefix: str,
    max_iterations: int,
    threshold: float | None = None,
    num_reduces: int = 4,
    combiner: bool = False,
) -> IterativeSpec:
    """The Hadoop baseline: one job per iteration (+ optional check job)."""

    def job_factory(iteration: int, input_paths: list[str]) -> Job:
        return Job(
            name=f"sssp-{iteration}",
            mapper=mr_mapper,
            reducer=mr_reducer,
            combiner=mr_combiner if combiner else None,
            input_paths=input_paths,
            output_path=f"{output_prefix}/iter{iteration}",
            num_reduces=num_reduces,
            partitioner=ModPartitioner(),
        )

    def convergence_factory(iteration, prev_paths, curr_paths) -> Job:
        return Job(
            name=f"sssp-check-{iteration}",
            mapper=_diff_mapper,
            reducer=_diff_reducer,
            input_paths=list(prev_paths) + list(curr_paths),
            output_path=f"{output_prefix}/check{iteration}",
            num_reduces=num_reduces,
            partitioner=ModPartitioner(),
        )

    return IterativeSpec(
        name="sssp",
        job_factory=job_factory,
        max_iterations=max_iterations,
        threshold=threshold,
        convergence_factory=convergence_factory if threshold is not None else None,
    )


# ------------------------------------------------------------ references --
def reference_iterations(graph: Digraph, source: int, iterations: int) -> np.ndarray:
    """Exactly ``iterations`` synchronous relaxation rounds (numpy)."""
    if not graph.weighted:
        raise ValueError("SSSP needs a weighted graph")
    n = graph.num_nodes
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    sources = np.repeat(np.arange(n), np.diff(graph.indptr))
    targets = graph.targets
    weights = graph.weights
    for _ in range(iterations):
        offers = dist[sources] + weights
        new = dist.copy()
        np.minimum.at(new, targets, offers)
        dist = new
    return dist


def reference_exact(graph: Digraph, source: int) -> np.ndarray:
    """Converged shortest distances via scipy's Dijkstra."""
    from scipy.sparse.csgraph import dijkstra

    matrix = graph.to_scipy_csr()
    return dijkstra(matrix, directed=True, indices=source)
