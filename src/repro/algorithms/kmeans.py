"""K-means clustering (paper §5.1, §5.3) on the Last.fm workload.

State = the k cluster centroids (dense vectors over the artist
catalogue); static = the users' sparse preference vectors.  The mapping
from reduce to map is one-to-all: every map task needs every centroid,
so iMapReduce broadcasts the state and runs maps synchronously (§5.1.2).

Record formats:

* static: ``(user_id, (artist_ids, play_counts))`` — two small numpy
  arrays (the sparse preference vector);
* state:  ``(cid, centroid_vector)`` — or, when ``track_membership`` is
  on (the §5.3 convergence-detection variant), ``(cid, (centroid_vector,
  member_ids))`` so the auxiliary phase can count nodes that moved
  between clusters;
* shuffle: ``(cid, ("pt", ids, counts))`` points, combinable into
  ``(cid, ("sum", dense_sum, n))`` partial aggregates — the Combiner
  experiment of §5.1.3.

Squared Euclidean distances are computed as ‖c‖² − 2·c[ids]·counts + ‖x‖²
in *every* implementation (engines and the numpy reference), so
assignments agree bit-for-bit.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ..common.config import IterKeys, JobConf
from ..common.partition import ModPartitioner
from ..data.lastfm import LastFmDataset
from ..imapreduce import AuxPhase, IterativeJob, Kernel
from ..mapreduce import Job
from ..mapreduce.driver import IterativeSpec

__all__ = [
    "initial_centroids",
    "assign",
    "KMeansKernel",
    "build_imr_job",
    "build_mr_spec",
    "make_convergence_aux",
    "reference_lloyd",
]


# ----------------------------------------------------------------- setup --
def initial_centroids(
    data: LastFmDataset, k: int, seed: int = 0
) -> list[tuple[int, np.ndarray]]:
    """k starting centroids: the dense vectors of k seeded-random users."""
    rng = np.random.default_rng(seed)
    chosen = rng.choice(data.num_users, size=k, replace=False)
    centroids = []
    for cid, uid in enumerate(sorted(chosen.tolist())):
        ids, counts = data.records[uid]
        vec = np.zeros(data.num_artists)
        vec[ids] = counts
        centroids.append((cid, vec))
    return centroids


def _sq_norm(ids: np.ndarray, counts: np.ndarray) -> float:
    return float(np.dot(counts, counts))


def assign(
    ids: np.ndarray,
    counts: np.ndarray,
    centroids: Sequence[tuple[int, np.ndarray]],
) -> int:
    """Nearest-centroid id; ties break to the lowest cid."""
    x_norm = _sq_norm(ids, counts)
    best_cid = -1
    best_dist = np.inf
    for cid, vec in sorted(centroids, key=lambda kv: kv[0]):
        dist = float(vec @ vec) - 2.0 * float(vec[ids] @ counts) + x_norm
        if dist < best_dist:
            best_cid, best_dist = cid, dist
    return best_cid


def _centroid_of(value: Any) -> np.ndarray:
    """State value → centroid vector (with or without membership)."""
    if isinstance(value, tuple):
        return value[0]
    return value


# ---------------------------------------------------------- iMapReduce --
def _offer_keeps(ctx, pairs) -> None:
    """Once per task context: re-offer every centroid so empty clusters
    survive (the reduce falls back to the offer when no point arrives).
    One offer per map *task*, not per record — the tasks share a context
    for the iteration in both engines."""
    if "_keeps_emitted" in ctx.counters:
        return
    ctx.increment("_keeps_emitted")
    for cid, vec in pairs:
        ctx.emit(cid, ("keep", vec))


class KMeansImrMap:
    """Nearest-centroid assignment map as a picklable callable (the
    multiprocess backend ships jobs to workers by pickle)."""

    __slots__ = ("track_membership",)

    def __init__(self, track_membership: bool = False):
        # Same map either way; the reduce differs on membership.
        self.track_membership = track_membership

    def __call__(self, uid: int, centroids: list, prefs: tuple, ctx) -> None:
        pairs = [(cid, _centroid_of(v)) for cid, v in centroids]
        _offer_keeps(ctx, pairs)
        ids, counts = prefs
        best = assign(ids, counts, pairs)
        ctx.emit(best, ("pt", uid, ids, counts))


class KMeansImrReduce:
    """Centroid-recomputation reduce as a picklable callable."""

    __slots__ = ("track_membership",)

    def __init__(self, track_membership: bool = False):
        self.track_membership = track_membership

    def __call__(self, cid: int, values: list, ctx) -> None:
        # Every map offers ("keep", centroid), so the dense length is known.
        keep = next(v[1] for v in values if v[0] == "keep")
        total = np.zeros(len(keep))
        count = 0
        members: list[int] = []
        for value in values:
            kind = value[0]
            if kind == "pt":
                _, uid, ids, counts = value
                np.add.at(total, ids, counts)
                count += 1
                members.append(uid)
            elif kind == "sum":
                _, vec, n, uids = value
                total[: len(vec)] += vec
                count += n
                members.extend(uids)
        centroid = total / count if count else keep
        if self.track_membership:
            ctx.emit(cid, (centroid, tuple(sorted(members))))
        else:
            ctx.emit(cid, centroid)


def make_imr_map(track_membership: bool):
    return KMeansImrMap(track_membership)


def make_imr_reduce(track_membership: bool):
    return KMeansImrReduce(track_membership)


def centroid_distance(cid: Any, prev: Any, curr: Any) -> float:
    """Manhattan movement of a centroid between iterations."""
    if prev is None:
        return float(np.abs(_centroid_of(curr)).sum())
    return float(np.abs(_centroid_of(prev) - _centroid_of(curr)).sum())


class MembershipAuxMap:
    """Aux map: compare each cluster's membership with last iteration's."""

    __slots__ = ()

    def __call__(self, cid: int, value: tuple, ctx) -> None:
        _centroid, members = value
        previous: set = ctx.task_state.setdefault("members", {}).get(cid, set())
        members = set(members)
        stayed = len(members & previous)
        ctx.task_state["members"][cid] = members
        ctx.emit(0, ("counts", len(members), stayed))


class MembershipAuxReduce:
    """Aux reduce: terminate once fewer than ``move_threshold`` moved."""

    __slots__ = ("move_threshold",)

    def __init__(self, move_threshold: int):
        self.move_threshold = move_threshold

    def __call__(self, key: int, values: list, ctx) -> None:
        total = sum(v[1] for v in values)
        stayed = sum(v[2] for v in values)
        first_round = ctx.task_state.get("rounds", 0) == 0
        ctx.task_state["rounds"] = ctx.task_state.get("rounds", 0) + 1
        if not first_round and (total - stayed) < self.move_threshold:
            ctx.signal_terminate()


def make_convergence_aux(move_threshold: int, num_tasks: int = 1) -> AuxPhase:
    """§5.3: auxiliary phase that counts users who changed cluster and
    signals termination when fewer than ``move_threshold`` moved.

    Requires the main job to run with ``track_membership=True``.
    """
    return AuxPhase(
        map_fn=MembershipAuxMap(),
        reduce_fn=MembershipAuxReduce(move_threshold),
        num_tasks=num_tasks,
    )


class KMeansKernel(Kernel):
    """Vectorized Lloyd step over a pair's static user partition.

    Per iteration each non-empty pair computes every user's nearest
    centroid in one distance-matrix expression (the engines' shared
    ‖c‖² − 2·c·x + ‖x‖² formula) and emits one ``(A+1)``-wide partial
    row per centroid id — dense play-count sums plus a trailing member
    count.  The ``sum`` merge adds the partials; ``finalize`` divides by
    the count, falling back to the previous centroid for empty clusters
    (the record path's "keep" rule).  Ties break to the lowest cid in
    both paths (broadcast keys are ascending; ``argmin`` returns the
    first minimum).  Dot products run as one CSR sparse-dense matmul
    over the partition's play matrix (built once in ``prepare``, §3.2
    static residency), reassociated vs the record path's per-user
    ``vec[ids] @ counts`` — hence tolerance oracle.
    """

    __slots__ = ("num_artists",)

    merge = "sum"
    needs_broadcast = True

    def __init__(self, num_artists: int):
        self.num_artists = num_artists

    @property
    def state_width(self) -> int:  # centroids are (A,) vectors
        return self.num_artists

    def prepare(self, pair, owned_keys, static_table):
        uids = sorted(static_table)
        entries = [static_table[u] for u in uids]
        counts = np.array([len(ids) for ids, _ in entries], dtype=np.int64)
        if entries:
            aids = np.concatenate(
                [np.asarray(ids, dtype=np.int64) for ids, _ in entries]
            )
            plays = np.concatenate(
                [np.asarray(c, dtype=np.float64) for _, c in entries]
            )
        else:
            aids = np.empty(0, dtype=np.int64)
            plays = np.empty(0, dtype=np.float64)
        user_row = np.repeat(np.arange(len(uids)), counts)
        x_norm = np.array(
            [_sq_norm(ids, c) for ids, c in entries], dtype=np.float64
        )
        from scipy import sparse  # runtime dep; keep module import light

        indptr = np.concatenate([[0], np.cumsum(counts)])
        plays_mat = sparse.csr_matrix(
            (plays, aids, indptr), shape=(len(uids), self.num_artists)
        )
        return aids, plays, user_row, x_norm, plays_mat

    def map_kernel(self, pair, keys, values, prepared, broadcast):
        aids, plays, user_row, x_norm, plays_mat = prepared
        a = self.num_artists
        num_users = x_norm.size
        if num_users == 0:
            # No users in this static partition: the record map never
            # runs here either, so nothing (not even keeps) is emitted.
            return np.empty(0, dtype=np.int64), np.empty((0, a + 1))
        bkeys, centroids = broadcast
        k = bkeys.size
        c_norm = np.einsum("ij,ij->i", centroids, centroids)
        dots = plays_mat @ centroids.T  # CSR sparse-dense: the hot line
        dist = c_norm[None, :] - 2.0 * dots + x_norm[:, None]
        best = np.argmin(dist, axis=1)
        # One flat bincount scatters every (cluster, artist) partial;
        # column ``a`` is never hit by an artist id, then holds counts.
        flat = best[user_row] * (a + 1) + aids
        totals = np.bincount(
            flat, weights=plays, minlength=k * (a + 1)
        ).reshape(k, a + 1)
        totals[:, a] = np.bincount(best, minlength=k)
        return bkeys.copy(), totals

    def finalize(self, pair, keys, merged, prev_values, prepared):
        a = self.num_artists
        counts = merged[:, a]
        nonempty = counts > 0
        out = prev_values.copy()  # empty clusters keep their centroid
        out[nonempty] = merged[nonempty, :a] / counts[nonempty, None]
        return out

    def distance_partial(self, keys, prev, curr):
        return float(np.abs(prev - curr).sum())


def build_imr_job(
    *,
    state_path: str,
    static_path: str,
    output_path: str,
    max_iterations: int | None = None,
    threshold: float | None = None,
    num_pairs: int | None = None,
    combiner: bool = False,
    track_membership: bool = False,
    aux: AuxPhase | None = None,
    checkpoint_interval: int | None = None,
    use_kernel: bool = False,
    num_artists: int | None = None,
) -> IterativeJob:
    if use_kernel:
        if num_artists is None:
            raise ValueError("use_kernel requires num_artists (state width)")
        if track_membership:
            raise ValueError(
                "the kernel path does not track membership (tuple state)"
            )
    conf = JobConf()
    conf.set(IterKeys.STATE_PATH, state_path)
    conf.set(IterKeys.STATIC_PATH, static_path)
    conf.set(IterKeys.MAPPING, "one2all")  # §5.1.2
    conf.set_boolean(IterKeys.SYNC, True)
    if max_iterations is not None:
        conf.set_int(IterKeys.MAX_ITER, max_iterations)
    if threshold is not None:
        conf.set_float(IterKeys.DIST_THRESH, threshold)
    if checkpoint_interval is not None:
        conf.set_int(IterKeys.CHECKPOINT_INTERVAL, checkpoint_interval)
    return IterativeJob.single_phase(
        "kmeans",
        make_imr_map(track_membership),
        make_imr_reduce(track_membership),
        conf=conf,
        output_path=output_path,
        distance_fn=centroid_distance if threshold is not None else None,
        partitioner=ModPartitioner(),
        combiner=mr_combiner if combiner else None,
        num_pairs=num_pairs,
        aux=aux,
        kernel=KMeansKernel(num_artists) if use_kernel else None,
    )


# ------------------------------------------------------------ MapReduce --
class KMeansMapper:
    """Baseline mapper: centroids arrive as a distributed-cache side file."""

    def __init__(self):
        self._centroids: list[tuple[int, np.ndarray]] = []

    def configure(self, side_data: dict) -> None:
        centroids: list[tuple[int, np.ndarray]] = []
        for records in side_data.values():
            centroids.extend((cid, _centroid_of(v)) for cid, v in records)
        self._centroids = sorted(centroids, key=lambda kv: kv[0])

    def map(self, uid: int, prefs: tuple, ctx) -> None:
        _offer_keeps(ctx, self._centroids)
        ids, counts = prefs
        best = assign(ids, counts, self._centroids)
        ctx.emit(best, ("pt", uid, ids, counts))


def mr_combiner(cid: int, values: list, ctx) -> None:
    """Partial aggregation: points → ("sum", vec, count, uids).

    Each map task emits a ("keep", …) for every cid, so one is always in
    the group and fixes the dense length.  One keep is re-emitted so the
    reduce side still sees the empty-cluster fallback.
    """
    keep = next(v[1] for v in values if v[0] == "keep")
    total = np.zeros(len(keep))
    count = 0
    uids: list[int] = []
    for value in values:
        kind = value[0]
        if kind == "pt":
            _, uid, ids, counts = value
            np.add.at(total, ids, counts)
            count += 1
            uids.append(uid)
        elif kind == "sum":
            _, vec, n, vuids = value
            total[: len(vec)] += vec
            count += n
            uids.extend(vuids)
    ctx.emit(cid, ("keep", keep))
    if count > 0:
        ctx.emit(cid, ("sum", total, count, tuple(uids)))


def make_mr_reducer(track_membership: bool):
    reduce_fn = make_imr_reduce(track_membership)

    def mr_reducer(cid: int, values: list, ctx) -> None:
        reduce_fn(cid, values, ctx)

    return mr_reducer


def build_mr_spec(
    *,
    points_path: str | list[str],
    output_prefix: str,
    max_iterations: int,
    num_reduces: int = 4,
    combiner: bool = False,
    track_membership: bool = False,
    move_threshold: int | None = None,
) -> IterativeSpec:
    """The Hadoop baseline: the points file is the job input every
    iteration; the previous iteration's centroids travel as side files.

    With ``move_threshold`` set, an additional convergence-check job runs
    after each iteration (the paper's Fig. 20 baseline), comparing
    memberships of the two latest centroid sets.
    """
    point_inputs = [points_path] if isinstance(points_path, str) else list(points_path)

    def job_factory(iteration: int, centroid_paths: list[str]) -> Job:
        return Job(
            name=f"kmeans-{iteration}",
            mapper=KMeansMapper(),
            reducer=make_mr_reducer(track_membership or move_threshold is not None),
            combiner=mr_combiner if combiner else None,
            input_paths=point_inputs,
            output_path=f"{output_prefix}/iter{iteration}",
            num_reduces=num_reduces,
            partitioner=ModPartitioner(),
            side_inputs=centroid_paths,
        )

    convergence_factory = None
    if move_threshold is not None:

        def _check_mapper(cid, value, ctx):
            # The initial centroid file has no membership yet.
            if isinstance(value, tuple):
                ctx.emit(0, (cid, tuple(value[1])))
            else:
                ctx.emit(0, (cid, ()))

        def _check_reducer(key, values, ctx):
            # values: (cid, members) records from prev and curr outputs;
            # the first occurrence of a cid is prev, the second is curr.
            seen: dict[int, tuple] = {}
            moved = 0
            total = 0
            for cid, members in values:
                if cid in seen:
                    prev, curr = set(seen[cid]), set(members)
                    total += len(curr)
                    moved += len(curr - prev)
                else:
                    seen[cid] = members
            ctx.increment("moved", moved)

        def convergence_factory(iteration, prev_paths, curr_paths):
            return Job(
                name=f"kmeans-check-{iteration}",
                mapper=_check_mapper,
                reducer=_check_reducer,
                input_paths=list(prev_paths) + list(curr_paths),
                output_path=f"{output_prefix}/check{iteration}",
                num_reduces=1,
            )

    return IterativeSpec(
        name="kmeans",
        job_factory=job_factory,
        max_iterations=max_iterations,
        threshold=float(move_threshold) if move_threshold is not None else None,
        convergence_factory=convergence_factory,
        distance_counter="moved",
    )


# ------------------------------------------------------------ references --
def reference_lloyd(
    data: LastFmDataset,
    centroids: list[tuple[int, np.ndarray]],
    iterations: int,
) -> tuple[list[tuple[int, np.ndarray]], np.ndarray]:
    """Plain Lloyd's algorithm with the engines' exact distance formula
    and tie-breaking.  Returns (centroids, assignments)."""
    current = [(cid, vec.copy()) for cid, vec in centroids]
    assignment = np.zeros(data.num_users, dtype=np.int64)
    for _ in range(iterations):
        sums = {cid: np.zeros(data.num_artists) for cid, _ in current}
        counts = {cid: 0 for cid, _ in current}
        for uid, (ids, play_counts) in enumerate(data.records):
            best = assign(ids, play_counts, current)
            assignment[uid] = best
            np.add.at(sums[best], ids, play_counts)
            counts[best] += 1
        current = [
            (cid, sums[cid] / counts[cid] if counts[cid] else vec)
            for cid, vec in current
        ]
    return current, assignment
