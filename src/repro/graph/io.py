"""Text formats for graphs — the framework's supported input formats.

The paper (§3.5): "iMapReduce supports automatically graph partitioning
and graph loading for a few particular formatted graphs (including
weighted and unweighted graphs)".  We support the two formats its example
jobs use, one adjacency line per node:

* unweighted:  ``<node>\\t<nbr> <nbr> ...``
* weighted:    ``<node>\\t<nbr>:<weight> <nbr>:<weight> ...``

These functions convert between :class:`~repro.graph.digraph.Digraph`,
text lines, and the per-node records the DFS stores.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .digraph import Digraph

__all__ = [
    "format_adjacency_lines",
    "parse_adjacency_lines",
    "graph_to_records",
    "records_to_graph",
]


def format_adjacency_lines(graph: Digraph) -> list[str]:
    """Render a graph in the framework's text format."""
    lines: list[str] = []
    for u, adjacency in graph.static_records():
        if graph.weighted:
            body = " ".join(f"{v}:{w:.4f}" for v, w in adjacency)
        else:
            body = " ".join(str(v) for v in adjacency)
        lines.append(f"{u}\t{body}")
    return lines


def parse_adjacency_lines(lines: Iterable[str]) -> Digraph:
    """Parse the text format back into a graph.

    Node ids must be a contiguous ``0..n-1`` range (every node has a
    line, possibly with an empty adjacency).
    """
    adjacency: dict[int, list[tuple[int, float] | int]] = {}
    weighted: bool | None = None
    for raw in lines:
        line = raw.rstrip("\n")
        if not line.strip():
            continue
        node_part, _, body = line.partition("\t")
        u = int(node_part)
        entries: list = []
        for token in body.split():
            if ":" in token:
                if weighted is False:
                    raise ValueError("mixed weighted/unweighted lines")
                weighted = True
                v, w = token.split(":", 1)
                entries.append((int(v), float(w)))
            else:
                if weighted is True:
                    raise ValueError("mixed weighted/unweighted lines")
                weighted = False
                entries.append(int(token))
        if u in adjacency:
            raise ValueError(f"duplicate adjacency line for node {u}")
        adjacency[u] = entries
    if not adjacency:
        raise ValueError("no adjacency lines")
    n = max(adjacency) + 1
    if set(adjacency) != set(range(n)):
        raise ValueError("node ids must cover 0..n-1")
    edges: list[tuple[int, int]] = []
    weights: list[float] = []
    for u in range(n):
        for entry in adjacency[u]:
            if weighted:
                v, w = entry
                edges.append((u, v))
                weights.append(w)
            else:
                edges.append((u, entry))
    if not edges:
        return Digraph(np.zeros(n + 1, dtype=np.int64), np.empty(0, dtype=np.int64))
    return Digraph.from_edges(n, edges, weights if weighted else None)


def graph_to_records(graph: Digraph) -> list[tuple[int, tuple]]:
    """Per-node adjacency records — what gets ingested as static data."""
    return list(graph.static_records())


def records_to_graph(records: Iterable[tuple[int, tuple]]) -> Digraph:
    """Rebuild a graph from static-data records (inverse of the above)."""
    records = list(records)
    if not records:
        raise ValueError("no records")
    n = max(u for u, _ in records) + 1
    edges: list[tuple[int, int]] = []
    weights: list[float] = []
    weighted: bool | None = None
    for u, adjacency in records:
        for entry in adjacency:
            if isinstance(entry, tuple):
                if weighted is False:
                    raise ValueError("mixed record kinds")
                weighted = True
                edges.append((u, entry[0]))
                weights.append(entry[1])
            else:
                if weighted is True:
                    raise ValueError("mixed record kinds")
                weighted = False
                edges.append((u, int(entry)))
    if not edges:
        return Digraph(np.zeros(n + 1, dtype=np.int64), np.empty(0, dtype=np.int64))
    return Digraph.from_edges(n, edges, weights if weighted else None)
