"""Synthetic graph generators following the paper's recipe (§4.1.2).

The paper generates its synthetic evaluation graphs by fitting log-normal
distributions to real graphs and sampling:

* SSSP graphs — out-degree log-normal (σ=1.0, μ=1.5), link weights
  log-normal (σ=1.2, μ=0.4);
* PageRank graphs — out-degree log-normal (σ=2.0, μ=−0.5), unweighted.

We use the same generative model.  For the real-graph *stand-ins* (DBLP,
Facebook, Google web, Berkeley–Stanford) we keep the paper's σ and solve
μ so the expected mean degree matches the published edge/node ratio —
``mu = ln(mean_degree) - sigma**2 / 2`` for a log-normal.

Targets are sampled uniformly, excluding self-loops, without duplicate
edges per node (simple directed graphs, like the paper's web/social
graphs).  Generation is seeded and fully deterministic.
"""

from __future__ import annotations

import math

import numpy as np

from .digraph import Digraph

__all__ = [
    "lognormal_out_degrees",
    "lognormal_graph",
    "sssp_graph",
    "pagerank_graph",
    "mu_for_mean_degree",
]

#: Paper §4.1.2 parameters.
SSSP_DEGREE_SIGMA = 1.0
SSSP_DEGREE_MU = 1.5
SSSP_WEIGHT_SIGMA = 1.2
SSSP_WEIGHT_MU = 0.4
PAGERANK_DEGREE_SIGMA = 2.0
PAGERANK_DEGREE_MU = -0.5


def mu_for_mean_degree(mean_degree: float, sigma: float) -> float:
    """Log-normal location parameter giving the requested mean."""
    if mean_degree <= 0:
        raise ValueError("mean degree must be positive")
    return math.log(mean_degree) - sigma * sigma / 2.0


def lognormal_out_degrees(
    num_nodes: int,
    mu: float,
    sigma: float,
    rng: np.random.Generator,
    min_degree: int = 1,
) -> np.ndarray:
    """Sample integer out-degrees, clipped to ``[min_degree, n-1]``.

    ``min_degree=1`` avoids dangling nodes by default (the paper's
    PageRank update, Eq. 1, leaks rank at dangling nodes; keeping one
    outgoing edge per node makes convergence behaviour comparable across
    graph sizes).
    """
    raw = rng.lognormal(mean=mu, sigma=sigma, size=num_nodes)
    degrees = np.maximum(np.rint(raw).astype(np.int64), min_degree)
    return np.minimum(degrees, max(num_nodes - 1, min_degree))


def _sample_targets(num_nodes: int, degrees: np.ndarray, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """Pick each node's distinct non-self targets; returns (indptr, targets)."""
    indptr = np.concatenate(([0], np.cumsum(degrees)))
    targets = np.empty(indptr[-1], dtype=np.int64)
    n = num_nodes
    for u in range(n):
        deg = degrees[u]
        if deg == 0:
            continue
        lo, hi = indptr[u], indptr[u + 1]
        if deg >= n - 1:
            # Saturated: connect to everyone else.
            chosen = np.arange(n - 1, dtype=np.int64)
        elif deg > (n - 1) // 4:
            # Dense node: exact sampling without replacement.
            chosen = rng.choice(n - 1, size=deg, replace=False)
        else:
            # Sparse node: rejection via unique, top-up as needed.
            chosen = np.unique(rng.integers(0, n - 1, size=deg))
            while len(chosen) < deg:
                extra = rng.integers(0, n - 1, size=deg - len(chosen))
                chosen = np.unique(np.concatenate([chosen, extra]))
            chosen = chosen[:deg]
        # Map [0, n-2] onto node ids skipping u (no self-loops).
        mapped = np.where(chosen >= u, chosen + 1, chosen)
        targets[lo:hi] = mapped
    return indptr, targets


def lognormal_graph(
    num_nodes: int,
    *,
    degree_mu: float,
    degree_sigma: float,
    weight_mu: float | None = None,
    weight_sigma: float | None = None,
    seed: int = 0,
    min_degree: int = 1,
) -> Digraph:
    """Generate a simple directed graph with log-normal out-degrees.

    If weight parameters are given, edge weights are sampled log-normally
    (the SSSP datasets); otherwise the graph is unweighted (PageRank).
    """
    if num_nodes < 2:
        raise ValueError("need at least 2 nodes")
    rng = np.random.default_rng(seed)
    degrees = lognormal_out_degrees(num_nodes, degree_mu, degree_sigma, rng, min_degree)
    indptr, targets = _sample_targets(num_nodes, degrees, rng)
    weights = None
    if weight_mu is not None or weight_sigma is not None:
        if weight_mu is None or weight_sigma is None:
            raise ValueError("weight_mu and weight_sigma must be given together")
        weights = rng.lognormal(mean=weight_mu, sigma=weight_sigma, size=len(targets))
    return Digraph(indptr, targets, weights)


def sssp_graph(num_nodes: int, *, mean_degree: float | None = None, seed: int = 0) -> Digraph:
    """A weighted SSSP evaluation graph with the paper's parameters.

    ``mean_degree`` overrides μ (used for the real-graph stand-ins whose
    published edge/node ratios differ from the synthetic family's).
    """
    mu = (
        SSSP_DEGREE_MU
        if mean_degree is None
        else mu_for_mean_degree(mean_degree, SSSP_DEGREE_SIGMA)
    )
    return lognormal_graph(
        num_nodes,
        degree_mu=mu,
        degree_sigma=SSSP_DEGREE_SIGMA,
        weight_mu=SSSP_WEIGHT_MU,
        weight_sigma=SSSP_WEIGHT_SIGMA,
        seed=seed,
    )


def pagerank_graph(num_nodes: int, *, mean_degree: float | None = None, seed: int = 0) -> Digraph:
    """An unweighted PageRank evaluation graph with the paper's parameters."""
    mu = (
        PAGERANK_DEGREE_MU
        if mean_degree is None
        else mu_for_mean_degree(mean_degree, PAGERANK_DEGREE_SIGMA)
    )
    return lognormal_graph(
        num_nodes,
        degree_mu=mu,
        degree_sigma=PAGERANK_DEGREE_SIGMA,
        seed=seed,
    )
