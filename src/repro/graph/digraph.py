"""Compact directed graph: CSR adjacency backed by numpy arrays.

This is the static-data substrate for the graph workloads (SSSP and
PageRank).  Adjacency is stored contiguously (``indptr``/``targets``/
optional ``weights``) so generation and statistics stay vectorised; the
engines consume it as per-node adjacency *records* via
:meth:`Digraph.static_records`, which is exactly the static data of §3.2.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

__all__ = ["Digraph"]


class Digraph:
    """Immutable directed graph in CSR form."""

    def __init__(
        self,
        indptr: np.ndarray,
        targets: np.ndarray,
        weights: np.ndarray | None = None,
    ):
        indptr = np.asarray(indptr, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        if indptr.ndim != 1 or len(indptr) < 1 or indptr[0] != 0:
            raise ValueError("indptr must be 1-D and start at 0")
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if indptr[-1] != len(targets):
            raise ValueError("indptr[-1] must equal len(targets)")
        n = len(indptr) - 1
        if len(targets) and (targets.min() < 0 or targets.max() >= n):
            raise ValueError("target node id out of range")
        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != targets.shape:
                raise ValueError("weights must align with targets")
        self.indptr = indptr
        self.targets = targets
        self.weights = weights

    # -- constructors --------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        num_nodes: int,
        edges: Sequence[tuple[int, int]] | np.ndarray,
        weights: Sequence[float] | np.ndarray | None = None,
    ) -> "Digraph":
        """Build from an edge list (sources need not be sorted)."""
        edge_arr = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        src, dst = edge_arr[:, 0], edge_arr[:, 1]
        if len(src) and (src.min() < 0 or src.max() >= num_nodes):
            raise ValueError("source node id out of range")
        order = np.argsort(src, kind="stable")
        counts = np.bincount(src, minlength=num_nodes)
        indptr = np.concatenate(([0], np.cumsum(counts)))
        targets = dst[order]
        w = None
        if weights is not None:
            w = np.asarray(weights, dtype=np.float64)[order]
        return cls(indptr, targets, w)

    # -- basic properties ------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.indptr) - 1

    @property
    def num_edges(self) -> int:
        return int(self.indptr[-1])

    @property
    def weighted(self) -> bool:
        return self.weights is not None

    def out_degree(self, u: int | None = None) -> int | np.ndarray:
        degrees = np.diff(self.indptr)
        return degrees if u is None else int(degrees[u])

    def out_neighbors(self, u: int) -> np.ndarray:
        return self.targets[self.indptr[u] : self.indptr[u + 1]]

    def out_weights(self, u: int) -> np.ndarray:
        if self.weights is None:
            raise ValueError("graph is unweighted")
        return self.weights[self.indptr[u] : self.indptr[u + 1]]

    # -- record views ----------------------------------------------------------
    def static_records(self) -> Iterator[tuple[int, tuple]]:
        """Yield per-node adjacency records — the iMapReduce static data.

        Weighted graphs yield ``(u, ((v, w), ...))``; unweighted yield
        ``(u, (v, ...))``.  Every node appears, including sinks (empty
        adjacency) — the join in §3.2.2 needs a static record per key.
        """
        indptr, targets = self.indptr, self.targets
        if self.weights is None:
            for u in range(self.num_nodes):
                lo, hi = indptr[u], indptr[u + 1]
                yield u, tuple(int(v) for v in targets[lo:hi])
        else:
            weights = self.weights
            for u in range(self.num_nodes):
                lo, hi = indptr[u], indptr[u + 1]
                yield u, tuple(
                    (int(v), float(w)) for v, w in zip(targets[lo:hi], weights[lo:hi])
                )

    def edge_list(self) -> list[tuple[int, int]]:
        sources = np.repeat(np.arange(self.num_nodes), np.diff(self.indptr))
        return list(zip(sources.tolist(), self.targets.tolist()))

    # -- interop -----------------------------------------------------------------
    def to_networkx(self):
        """Export to a networkx DiGraph (collapses duplicate edges)."""
        import networkx as nx

        g = nx.DiGraph()
        g.add_nodes_from(range(self.num_nodes))
        if self.weights is None:
            g.add_edges_from(self.edge_list())
        else:
            sources = np.repeat(np.arange(self.num_nodes), np.diff(self.indptr))
            g.add_weighted_edges_from(
                zip(sources.tolist(), self.targets.tolist(), self.weights.tolist())
            )
        return g

    def to_scipy_csr(self):
        """Export to a scipy sparse adjacency matrix (weights or 1s)."""
        from scipy.sparse import csr_matrix

        data = self.weights if self.weights is not None else np.ones(self.num_edges)
        return csr_matrix(
            (data, self.targets, self.indptr), shape=(self.num_nodes, self.num_nodes)
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "weighted" if self.weighted else "unweighted"
        return f"<Digraph n={self.num_nodes} m={self.num_edges} {kind}>"
