"""Graph substrate: compact digraphs, log-normal generators, text I/O."""

from .digraph import Digraph
from .generators import (
    lognormal_graph,
    lognormal_out_degrees,
    mu_for_mean_degree,
    pagerank_graph,
    sssp_graph,
)
from .io import (
    format_adjacency_lines,
    graph_to_records,
    parse_adjacency_lines,
    records_to_graph,
)

__all__ = [
    "Digraph",
    "lognormal_graph",
    "lognormal_out_degrees",
    "mu_for_mean_degree",
    "pagerank_graph",
    "sssp_graph",
    "format_adjacency_lines",
    "graph_to_records",
    "parse_adjacency_lines",
    "records_to_graph",
]
