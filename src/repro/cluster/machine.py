"""A simulated worker machine.

A machine owns the three resources whose contention produces the paper's
performance effects:

* ``cpu`` — ``cores`` servers; compute work of *w* reference-seconds holds
  one core for ``w / cpu_speed`` virtual seconds (``cpu_speed`` expresses
  heterogeneous hardware, §3.4.2's motivation for load balancing);
* ``disk`` — one bandwidth pipe shared by reads and writes;
* ``uplink`` / ``downlink`` — the NIC's two directions; every remote
  transfer occupies the sender's uplink and receiver's downlink, so
  concurrent flows through one NIC serialize (deterministic contention).

Processes spawned on a machine should be registered via
:meth:`Machine.spawn` so that fault injection can kill them all at once.
"""

from __future__ import annotations

from typing import Any, Generator

from ..common.errors import ClusterError, WorkerFailure
from ..simulation import Engine, Event, Process, Resource

__all__ = ["BandwidthPipe", "Machine"]


class BandwidthPipe:
    """A FIFO bandwidth channel: concurrent users queue.

    ``use(nbytes)`` holds the pipe for ``latency + nbytes / rate`` seconds.
    Byte and transfer counters feed the communication-cost metrics
    (paper Fig. 11).
    """

    def __init__(self, engine: Engine, rate_bytes_per_s: float, latency_s: float = 0.0):
        if rate_bytes_per_s <= 0:
            raise ClusterError(f"pipe rate must be positive, got {rate_bytes_per_s}")
        self.engine = engine
        self.rate = float(rate_bytes_per_s)
        self.latency = float(latency_s)
        self._channel = Resource(engine, capacity=1)
        self.total_bytes = 0
        self.total_transfers = 0

    def transfer_time(self, nbytes: int) -> float:
        return self.latency + nbytes / self.rate

    def use(self, nbytes: int) -> Generator[Event, Any, None]:
        """Process helper: move ``nbytes`` through the pipe."""
        if nbytes < 0:
            raise ClusterError(f"negative transfer size: {nbytes}")
        self.total_bytes += nbytes
        self.total_transfers += 1
        yield from self._channel.use(self.transfer_time(nbytes))


class Machine:
    """One simulated worker (or master) host."""

    def __init__(
        self,
        engine: Engine,
        name: str,
        *,
        cores: int = 2,
        cpu_speed: float = 1.0,
        disk_bw: float = 100e6,
        nic_bw: float = 125e6,
        nic_latency: float = 0.5e-3,
    ):
        if cpu_speed <= 0:
            raise ClusterError(f"cpu_speed must be positive, got {cpu_speed}")
        self.engine = engine
        self.name = name
        self.cores = cores
        self.cpu_speed = float(cpu_speed)
        self.cpu = Resource(engine, capacity=cores)
        self.disk = BandwidthPipe(engine, disk_bw)
        self.uplink = BandwidthPipe(engine, nic_bw, nic_latency)
        self.downlink = BandwidthPipe(engine, nic_bw, nic_latency)
        self.failed = False
        self.local_bytes = 0  # bytes held on the local file system
        self._processes: list[Process] = []

    # -- compute -------------------------------------------------------------
    def compute(self, work: float) -> Generator[Event, Any, None]:
        """Hold one CPU core for ``work`` reference-seconds of computation."""
        if work < 0:
            raise ClusterError(f"negative compute work: {work}")
        self._check_alive()
        yield from self.cpu.use(work / self.cpu_speed)

    # -- storage -----------------------------------------------------------
    def disk_read(self, nbytes: int) -> Generator[Event, Any, None]:
        self._check_alive()
        yield from self.disk.use(nbytes)

    def disk_write(self, nbytes: int) -> Generator[Event, Any, None]:
        self._check_alive()
        self.local_bytes += nbytes
        yield from self.disk.use(nbytes)

    def disk_delete(self, nbytes: int) -> None:
        self.local_bytes = max(0, self.local_bytes - nbytes)

    # -- process lifecycle --------------------------------------------------
    def spawn(self, generator, name: str = "") -> Process:
        """Start a process bound to this machine (killed on failure)."""
        self._check_alive()
        proc = self.engine.process(generator, name=name or f"{self.name}:proc")
        self._processes.append(proc)
        self._processes = [p for p in self._processes if p.is_alive]
        return proc

    def fail(self) -> None:
        """Fault injection: kill the machine and every process on it."""
        if self.failed:
            return
        self.failed = True
        failure = WorkerFailure(self.name, self.engine.now)
        for proc in self._processes:
            if proc.is_alive:
                proc.interrupt(failure)
        self._processes.clear()

    def recover(self) -> None:
        """Bring a failed machine back (empty local FS, as after reimage)."""
        self.failed = False
        self.local_bytes = 0

    def _check_alive(self) -> None:
        if self.failed:
            raise WorkerFailure(self.name, self.engine.now)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "FAILED" if self.failed else "up"
        return f"<Machine {self.name} cores={self.cores} speed={self.cpu_speed} {state}>"
