"""Cluster: a set of machines joined by a star switch, plus the stock
topologies used in the paper's evaluation (§4.1.1).

* :func:`local_cluster` — 4 nodes, dual-core 2.66 GHz, 1 Gbps switch.
* :func:`ec2_cluster` — *n* "small instance"-like nodes (1 core, slower
  clock, more modest I/O), used for the 20/50/80-instance experiments.
* :func:`single_node` — 1 machine, for the parallel-efficiency baseline
  T* (Fig. 14).
* :func:`heterogeneous_cluster` — mixed CPU speeds, exercising the load
  balancer (§3.4.2).
"""

from __future__ import annotations

from typing import Any, Generator, Iterable, Sequence

from ..common.errors import ClusterError
from ..simulation import Engine, Event
from .machine import Machine
from .network import Delivery, NetworkFaultModel

__all__ = [
    "Cluster",
    "local_cluster",
    "ec2_cluster",
    "single_node",
    "heterogeneous_cluster",
]


class Cluster:
    """Machines connected through a store-and-forward star switch."""

    def __init__(self, engine: Engine, machines: Iterable[Machine], switch_latency: float = 0.1e-3):
        self.engine = engine
        self.machines: dict[str, Machine] = {}
        for machine in machines:
            if machine.name in self.machines:
                raise ClusterError(f"duplicate machine name {machine.name!r}")
            self.machines[machine.name] = machine
        if not self.machines:
            raise ClusterError("a cluster needs at least one machine")
        self.switch_latency = switch_latency
        #: Optional link-level fault model.  When ``None`` (the default)
        #: the network is perfectly reliable and every path below is
        #: byte-for-byte identical to the pre-fault-model behaviour.
        self.net: NetworkFaultModel | None = None

    def install_network_faults(self, model: NetworkFaultModel) -> None:
        """Arm a link-level fault model onto this cluster's switch."""
        self.net = model

    # -- access -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.machines)

    def __getitem__(self, name: str) -> Machine:
        try:
            return self.machines[name]
        except KeyError:
            raise ClusterError(f"no machine named {name!r}") from None

    def names(self) -> list[str]:
        return list(self.machines)

    def workers(self) -> list[Machine]:
        return list(self.machines.values())

    def alive_workers(self) -> list[Machine]:
        return [m for m in self.machines.values() if not m.failed]

    # -- data movement ------------------------------------------------------
    def transfer(self, src: Machine | str, dst: Machine | str, nbytes: int) -> Generator[Event, Any, bool]:
        """Move ``nbytes`` from ``src`` to ``dst``; return ``True`` iff
        the bytes actually reached the receiver.

        Local transfers are free on the network (loopback) — Hadoop's
        locality optimisation that the paper's baseline also enjoys.
        Remote transfers hold the sender uplink then the receiver
        downlink in sequence (store-and-forward through the switch);
        FIFO queueing at each pipe models congestion deterministically.

        With a :class:`NetworkFaultModel` installed the switch may drop
        the message (loss window, partition, or dead receiver) — the
        sender still pays its uplink time, but the receiver's downlink
        is never touched — or delay it.  Without a model the behaviour
        is exactly the historical reliable path, so failure-free runs
        keep identical virtual timing.  Legacy callers that ignore the
        return value keep their old semantics.
        """
        source = self[src] if isinstance(src, str) else src
        target = self[dst] if isinstance(dst, str) else dst
        if source is target:
            return True  # loopback: no NIC cost, never lossy
        verdict = self._verdict(source, target)
        yield from source.uplink.use(nbytes)
        yield self.engine.timeout(self.switch_latency)
        if verdict is not None:
            if verdict.extra_delay:
                yield self.engine.timeout(verdict.extra_delay)
            if verdict.lost or target.failed:
                return False
        yield from target.downlink.use(nbytes)
        return True

    def control_send(self, src: Machine | str, dst: Machine | str) -> Generator[Event, Any, bool]:
        """Fire one control-plane message (heartbeat, ack) ``src → dst``.

        Control messages are tiny: they cost pure switch latency, occupy
        no NIC pipe and count no bytes, so arming a failure detector
        does not perturb data-plane timing in a failure-free run.
        Returns ``True`` iff the message was delivered to a live
        receiver; loss windows and partitions apply just as for data.
        """
        source = self[src] if isinstance(src, str) else src
        target = self[dst] if isinstance(dst, str) else dst
        if source.failed:
            return False
        if source is target:
            return not target.failed
        verdict = self._verdict(source, target)
        delay = self.switch_latency
        if verdict is not None and verdict.extra_delay:
            delay += verdict.extra_delay
        yield self.engine.timeout(delay)
        if verdict is not None and verdict.lost:
            return False
        return not target.failed

    def reliable_transfer(
        self,
        src: Machine | str,
        dst: Machine | str,
        nbytes: int,
        *,
        rto: float = 0.25,
        backoff: float = 2.0,
        rto_max: float = 2.0,
        max_retries: int = 64,
        description: str = "",
    ) -> Generator[Event, Any, bool]:
        """:meth:`transfer`, retried with exponential backoff until the
        bytes land (bulk data that must arrive: DFS replica hops, the
        initial partition exchange).  On a reliable network the first
        attempt succeeds and the cost is identical to plain ``transfer``.
        """
        for attempt in range(max_retries + 1):
            delivered = yield from self.transfer(src, dst, nbytes)
            if delivered:
                return True
            yield self.engine.timeout(min(rto * backoff**attempt, rto_max))
        what = description or f"{src if isinstance(src, str) else src.name}->" \
            f"{dst if isinstance(dst, str) else dst.name}"
        raise ClusterError(
            f"transfer {what} undeliverable after {max_retries} retries"
        )

    def _verdict(self, source: Machine, target: Machine) -> Delivery | None:
        if self.net is None:
            return None
        return self.net.delivery(self.engine.now, source.name, target.name)

    # -- accounting ----------------------------------------------------------
    @property
    def network_bytes(self) -> int:
        """Total bytes that crossed any NIC uplink (the Fig. 11 metric)."""
        return sum(m.uplink.total_bytes for m in self.machines.values())

    def reset_counters(self) -> None:
        for machine in self.machines.values():
            for pipe in (machine.disk, machine.uplink, machine.downlink):
                pipe.total_bytes = 0
                pipe.total_transfers = 0


# -- stock topologies ---------------------------------------------------------

#: 1 Gbps expressed in bytes/second (§4.1.1: "communication bandwidth of 1 Gbps").
GIGABIT = 125e6

#: The stand-in datasets are ~this factor smaller than the paper's
#: (DESIGN.md §2), so the stock topologies divide their I/O rates by it:
#: byte-proportional costs then keep the same *share* of running time the
#: paper measured, despite the smaller files.  Topologies built directly
#: from :class:`Machine` are unaffected.
DATA_SCALE = 20.0

#: Deterministic per-node CPU-speed jitter.  Real commodity clusters are
#: never perfectly homogeneous (§3.4.2 motivates load balancing with
#: exactly this), and the paper's asynchronous-map gains come from
#: absorbing such stragglers; a seeded ±8% (local) / ±15% (EC2) spread
#: reproduces that texture deterministically.
_JITTER_SEED = 20120325  # the paper's publication date


def _jitter(index: int, spread: float) -> float:
    import numpy as np

    rng = np.random.default_rng(_JITTER_SEED + index)
    return 1.0 + spread * (2.0 * rng.random() - 1.0)


def local_cluster(engine: Engine, nodes: int = 4) -> Cluster:
    """The paper's local commodity cluster: dual-core nodes, 1 Gbps
    (rates pre-divided by :data:`DATA_SCALE`, see above)."""
    machines = [
        Machine(
            engine,
            f"node{i}",
            cores=2,
            cpu_speed=_jitter(i, 0.08),
            disk_bw=100e6 / DATA_SCALE,
            nic_bw=GIGABIT / DATA_SCALE,
        )
        for i in range(nodes)
    ]
    return Cluster(engine, machines)


#: The EC2 experiments (Figs. 8–14) run on the *synthetic* dataset
#: family, whose stand-ins are ~100–300× smaller than the paper's
#: 1M–50M-node graphs (DESIGN.md §2) — much smaller than the real-graph
#: stand-ins' 20×.  The EC2 topology therefore divides its I/O rates by
#: this larger factor, keeping byte-proportional costs at the same share
#: of running time the paper's EC2 runs had.
EC2_DATA_SCALE = 200.0


def ec2_cluster(engine: Engine, instances: int) -> Cluster:
    """EC2 small-instance-like nodes: 1 core, slower clock, shared I/O.

    EC2 small instances of the era had one virtual core of roughly 0.4×
    the local nodes' per-core throughput and noticeably lower network and
    disk bandwidth than a dedicated 1 Gbps LAN port.  Rates are
    pre-divided by :data:`EC2_DATA_SCALE`.
    """
    if instances < 1:
        raise ClusterError("need at least one instance")
    machines = [
        Machine(
            engine,
            f"ec2-{i}",
            cores=1,
            cpu_speed=0.4 * _jitter(1000 + i, 0.15),
            disk_bw=60e6 / EC2_DATA_SCALE,
            nic_bw=GIGABIT / 4 / EC2_DATA_SCALE,
            nic_latency=1.0e-3,
        )
        for i in range(instances)
    ]
    return Cluster(engine, machines)


def single_node(engine: Engine, like_ec2: bool = True) -> Cluster:
    """One machine — the T* baseline for parallel efficiency (Eq. 2)."""
    if like_ec2:
        return ec2_cluster(engine, 1)
    return local_cluster(engine, 1)


def heterogeneous_cluster(engine: Engine, speeds: Sequence[float], cores: int = 2) -> Cluster:
    """Machines whose CPU speeds differ — the load-balancing scenario."""
    machines = [
        Machine(
            engine,
            f"hnode{i}",
            cores=cores,
            cpu_speed=speed,
            disk_bw=100e6 / DATA_SCALE,
            nic_bw=GIGABIT / DATA_SCALE,
        )
        for i, speed in enumerate(speeds)
    ]
    return Cluster(engine, machines)
