"""Simulated cluster substrate: machines, topologies, fault injection."""

from .faults import FaultEvent, FaultSchedule
from .machine import BandwidthPipe, Machine
from .network import Delivery, LinkFault, NetworkFaultModel
from .topology import (
    GIGABIT,
    Cluster,
    ec2_cluster,
    heterogeneous_cluster,
    local_cluster,
    single_node,
)

__all__ = [
    "BandwidthPipe",
    "Machine",
    "Cluster",
    "GIGABIT",
    "ec2_cluster",
    "heterogeneous_cluster",
    "local_cluster",
    "single_node",
    "FaultEvent",
    "FaultSchedule",
    "Delivery",
    "LinkFault",
    "NetworkFaultModel",
]
