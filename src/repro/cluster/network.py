"""Link-level network fault model: loss, delay, duplication, partitions.

The paper assumes a reliable interconnect and lets the master learn of
failures by fiat; a production-shaped runtime has to earn its robustness
over a network that drops, delays and duplicates messages and sometimes
splits into groups that cannot reach each other.  :class:`LinkFault`
describes one misbehaviour window; :class:`NetworkFaultModel` folds the
active windows into a per-message delivery verdict that
:meth:`repro.cluster.topology.Cluster.transfer` (data plane) and
:meth:`~repro.cluster.topology.Cluster.control_send` (heartbeats, acks)
consult.

Determinism: every loss/duplication draw is a pure function of the model
seed and a per-message counter, so a seeded chaos campaign replays the
exact same packet fates event for event.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..common.errors import ClusterError
from ..common.partition import stable_hash

__all__ = ["LinkFault", "Delivery", "NetworkFaultModel"]


@dataclass(frozen=True, slots=True)
class LinkFault:
    """One window of link misbehaviour between two machine groups.

    ``group_a``/``group_b`` select which (directed either way) links the
    window applies to: empty groups mean "every machine"; a non-empty
    ``group_a`` with an empty ``group_b`` means "``group_a`` versus the
    rest of the cluster".  ``partition=True`` drops every message on the
    matched links for the window (a clean network split); otherwise
    ``loss_rate``/``dup_rate``/``extra_delay`` apply per message.
    """

    start: float
    end: float
    loss_rate: float = 0.0
    dup_rate: float = 0.0
    extra_delay: float = 0.0
    partition: bool = False
    group_a: tuple[str, ...] = ()
    group_b: tuple[str, ...] = ()

    def __post_init__(self):
        if self.start < 0 or self.end < self.start:
            raise ClusterError(
                f"link fault window [{self.start}, {self.end}] is invalid"
            )
        if not (0.0 <= self.loss_rate < 1.0):
            raise ClusterError(f"loss_rate must be in [0, 1), got {self.loss_rate}")
        if not (0.0 <= self.dup_rate < 1.0):
            raise ClusterError(f"dup_rate must be in [0, 1), got {self.dup_rate}")
        if self.extra_delay < 0:
            raise ClusterError(f"negative extra_delay: {self.extra_delay}")
        if self.partition and not math.isfinite(self.end):
            raise ClusterError("a partition must be transient (finite end)")

    def matches(self, now: float, src: str, dst: str) -> bool:
        if not (self.start <= now < self.end):
            return False
        if not self.group_a and not self.group_b:
            return True
        in_a = {src in self.group_a, dst in self.group_a}
        if self.group_b:
            in_b = {src in self.group_b, dst in self.group_b}
            # Only cross-group links (either direction) are affected.
            return (src in self.group_a and dst in self.group_b) or (
                src in self.group_b and dst in self.group_a
            )
        # group_a vs the rest: affected iff exactly one endpoint is inside.
        return in_a == {True, False}

    def machines(self) -> set[str]:
        return set(self.group_a) | set(self.group_b)

    def describe(self) -> str:
        kind = (
            "partition"
            if self.partition
            else f"loss={self.loss_rate:.0%}"
            + (f" dup={self.dup_rate:.0%}" if self.dup_rate else "")
            + (f" +{self.extra_delay * 1e3:.0f}ms" if self.extra_delay else "")
        )
        scope = "all links"
        if self.group_a or self.group_b:
            a = ",".join(self.group_a) or "*"
            b = ",".join(self.group_b) or "rest"
            scope = f"{a}|{b}"
        return f"{kind} {scope}@[{self.start:.2f},{self.end:.2f}]s"


@dataclass(frozen=True, slots=True)
class Delivery:
    """Verdict for one message attempt."""

    lost: bool = False
    duplicated: bool = False
    extra_delay: float = 0.0


class NetworkFaultModel:
    """Folds armed :class:`LinkFault` windows into per-message verdicts."""

    def __init__(self, faults: tuple[LinkFault, ...] | list[LinkFault], seed: int = 0):
        self.faults = tuple(faults)
        self.seed = seed
        self._counter = 0

    def horizon(self) -> float:
        """Virtual time after which every window has expired."""
        return max((f.end for f in self.faults), default=0.0)

    def _draw(self, salt: str, src: str, dst: str) -> float:
        self._counter += 1
        return (
            stable_hash((self.seed, salt, self._counter, src, dst)) % 1_000_000
        ) / 1_000_000.0

    def delivery(self, now: float, src: str, dst: str) -> Delivery:
        """Deterministic verdict for a message from ``src`` to ``dst``."""
        loss_pass = 1.0
        dup_pass = 1.0
        extra = 0.0
        for fault in self.faults:
            if not fault.matches(now, src, dst):
                continue
            if fault.partition:
                return Delivery(lost=True)
            loss_pass *= 1.0 - fault.loss_rate
            dup_pass *= 1.0 - fault.dup_rate
            extra += fault.extra_delay
        loss_rate = 1.0 - loss_pass
        dup_rate = 1.0 - dup_pass
        if not loss_rate and not dup_rate and not extra:
            return Delivery()
        lost = loss_rate > 0 and self._draw("loss", src, dst) < loss_rate
        duplicated = (
            not lost and dup_rate > 0 and self._draw("dup", src, dst) < dup_rate
        )
        return Delivery(lost=lost, duplicated=duplicated, extra_delay=extra)
