"""Fault injection: scripted worker failures and recoveries.

The paper's fault-tolerance design (§3.4.1) checkpoints state data to the
DFS every few iterations and recovers a failed task pair from the most
recent checkpoint.  :class:`FaultSchedule` drives the "failure" side of
that contract in experiments and tests: it fails named machines at given
virtual times (and optionally recovers them later), killing every
registered process on the machine through the interrupt mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..simulation import Engine
from .topology import Cluster

__all__ = ["FaultEvent", "FaultSchedule"]


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One scripted action: fail (or recover) ``machine`` at ``when``."""

    when: float
    machine: str
    action: str = "fail"  # "fail" | "recover"

    def __post_init__(self):
        if self.action not in ("fail", "recover"):
            raise ValueError(f"unknown fault action {self.action!r}")
        if self.when < 0:
            raise ValueError("fault time must be non-negative")


@dataclass
class FaultSchedule:
    """An ordered list of fault events, armed onto a cluster."""

    events: list[FaultEvent] = field(default_factory=list)

    def fail_at(self, when: float, machine: str) -> "FaultSchedule":
        self.events.append(FaultEvent(when, machine, "fail"))
        return self

    def recover_at(self, when: float, machine: str) -> "FaultSchedule":
        self.events.append(FaultEvent(when, machine, "recover"))
        return self

    def arm(self, engine: Engine, cluster: Cluster) -> None:
        """Install one driver process per event on the engine."""
        for event in sorted(self.events, key=lambda e: e.when):
            engine.process(self._driver(engine, cluster, event), name=f"fault@{event.when}")

    @staticmethod
    def _driver(engine: Engine, cluster: Cluster, event: FaultEvent):
        yield engine.timeout(event.when)
        machine = cluster[event.machine]
        if event.action == "fail":
            machine.fail()
        else:
            machine.recover()
