"""Fault injection: scripted worker failures, recoveries and link faults.

The paper's fault-tolerance design (§3.4.1) checkpoints state data to the
DFS every few iterations and recovers a failed task pair from the most
recent checkpoint.  :class:`FaultSchedule` drives the "failure" side of
that contract in experiments and tests: it fails named machines at given
virtual times (and optionally recovers them later), killing every
registered process on the machine through the interrupt mechanism.

A schedule can also carry :class:`~repro.cluster.network.LinkFault`
windows — message loss, added delay, transient partitions — which
``arm`` folds into a :class:`~repro.cluster.network.NetworkFaultModel`
installed on the cluster switch, so channels misbehave instead of the
master learning about trouble by fiat.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..simulation import Engine
from .network import LinkFault, NetworkFaultModel
from .topology import Cluster

__all__ = ["FaultEvent", "FaultSchedule"]


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One scripted action: fail (or recover) ``machine`` at ``when``."""

    when: float
    machine: str
    action: str = "fail"  # "fail" | "recover"

    def __post_init__(self):
        if self.action not in ("fail", "recover"):
            raise ValueError(f"unknown fault action {self.action!r}")
        if self.when < 0:
            raise ValueError("fault time must be non-negative")


@dataclass
class FaultSchedule:
    """An ordered list of fault events, armed onto a cluster."""

    events: list[FaultEvent] = field(default_factory=list)
    link_faults: list[LinkFault] = field(default_factory=list)

    def fail_at(self, when: float, machine: str) -> "FaultSchedule":
        self.events.append(FaultEvent(when, machine, "fail"))
        return self

    def recover_at(self, when: float, machine: str) -> "FaultSchedule":
        self.events.append(FaultEvent(when, machine, "recover"))
        return self

    # -- link-fault builders ------------------------------------------------
    def lose(
        self,
        start: float,
        end: float,
        rate: float,
        group_a: tuple[str, ...] = (),
        group_b: tuple[str, ...] = (),
    ) -> "FaultSchedule":
        """Drop each message with probability ``rate`` during the window."""
        self.link_faults.append(
            LinkFault(start, end, loss_rate=rate, group_a=group_a, group_b=group_b)
        )
        return self

    def delay_links(
        self,
        start: float,
        end: float,
        extra: float,
        group_a: tuple[str, ...] = (),
        group_b: tuple[str, ...] = (),
    ) -> "FaultSchedule":
        """Add ``extra`` seconds of one-way latency during the window."""
        self.link_faults.append(
            LinkFault(start, end, extra_delay=extra, group_a=group_a, group_b=group_b)
        )
        return self

    def partition(
        self,
        start: float,
        end: float,
        group_a: tuple[str, ...],
        group_b: tuple[str, ...] = (),
    ) -> "FaultSchedule":
        """Cleanly split ``group_a`` from ``group_b`` (or from the rest)."""
        self.link_faults.append(
            LinkFault(start, end, partition=True, group_a=group_a, group_b=group_b)
        )
        return self

    def sorted_events(self) -> list[FaultEvent]:
        """Events in firing order (time, then insertion order)."""
        return sorted(self.events, key=lambda e: e.when)

    def machines(self) -> set[str]:
        """Every machine the schedule touches."""
        return {event.machine for event in self.events}

    def max_concurrent_failures(self) -> int:
        """Peak number of machines down at once, assuming all start up.

        Campaign generators keep this below the DFS replication factor so
        injected faults can never lose every replica of a block — block
        loss would be a *storage* failure, not the runtime bug the chaos
        oracles hunt for.
        """
        down: set[str] = set()
        peak = 0
        for event in self.sorted_events():
            if event.action == "fail":
                down.add(event.machine)
            else:
                down.discard(event.machine)
            peak = max(peak, len(down))
        return peak

    def without(self, index: int) -> "FaultSchedule":
        """A copy with the ``index``-th event dropped (shrinking aid)."""
        return FaultSchedule(
            [e for i, e in enumerate(self.events) if i != index],
            list(self.link_faults),
        )

    def without_link(self, index: int) -> "FaultSchedule":
        """A copy with the ``index``-th link fault dropped (shrinking aid)."""
        return FaultSchedule(
            list(self.events),
            [f for i, f in enumerate(self.link_faults) if i != index],
        )

    def describe(self) -> str:
        """One-line human-readable form, used in chaos failure reports."""
        if not self.events and not self.link_faults:
            return "(no faults)"
        parts = [
            f"{e.action} {e.machine}@{e.when:.2f}s" for e in self.sorted_events()
        ]
        parts.extend(f.describe() for f in self.link_faults)
        return ", ".join(parts)

    def arm(self, engine: Engine, cluster: Cluster, *, net_seed: int = 0) -> None:
        """Install one driver process per event on the engine, and the
        link-fault model (seeded by ``net_seed``) on the cluster switch.

        Events naming machines the cluster does not have fail fast here,
        rather than as a mystery ``ClusterError`` mid-simulation.
        """
        for event in self.events:
            cluster[event.machine]  # raises ClusterError on unknown names
        for fault in self.link_faults:
            for name in fault.machines():
                cluster[name]
        if self.link_faults:
            cluster.install_network_faults(
                NetworkFaultModel(tuple(self.link_faults), seed=net_seed)
            )
        for event in self.sorted_events():
            engine.process(self._driver(engine, cluster, event), name=f"fault@{event.when}")

    @staticmethod
    def _driver(engine: Engine, cluster: Cluster, event: FaultEvent):
        yield engine.timeout(event.when)
        machine = cluster[event.machine]
        if event.action == "fail":
            machine.fail()
        else:
            machine.recover()
