"""Fault injection: scripted worker failures and recoveries.

The paper's fault-tolerance design (§3.4.1) checkpoints state data to the
DFS every few iterations and recovers a failed task pair from the most
recent checkpoint.  :class:`FaultSchedule` drives the "failure" side of
that contract in experiments and tests: it fails named machines at given
virtual times (and optionally recovers them later), killing every
registered process on the machine through the interrupt mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..simulation import Engine
from .topology import Cluster

__all__ = ["FaultEvent", "FaultSchedule"]


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One scripted action: fail (or recover) ``machine`` at ``when``."""

    when: float
    machine: str
    action: str = "fail"  # "fail" | "recover"

    def __post_init__(self):
        if self.action not in ("fail", "recover"):
            raise ValueError(f"unknown fault action {self.action!r}")
        if self.when < 0:
            raise ValueError("fault time must be non-negative")


@dataclass
class FaultSchedule:
    """An ordered list of fault events, armed onto a cluster."""

    events: list[FaultEvent] = field(default_factory=list)

    def fail_at(self, when: float, machine: str) -> "FaultSchedule":
        self.events.append(FaultEvent(when, machine, "fail"))
        return self

    def recover_at(self, when: float, machine: str) -> "FaultSchedule":
        self.events.append(FaultEvent(when, machine, "recover"))
        return self

    def sorted_events(self) -> list[FaultEvent]:
        """Events in firing order (time, then insertion order)."""
        return sorted(self.events, key=lambda e: e.when)

    def machines(self) -> set[str]:
        """Every machine the schedule touches."""
        return {event.machine for event in self.events}

    def max_concurrent_failures(self) -> int:
        """Peak number of machines down at once, assuming all start up.

        Campaign generators keep this below the DFS replication factor so
        injected faults can never lose every replica of a block — block
        loss would be a *storage* failure, not the runtime bug the chaos
        oracles hunt for.
        """
        down: set[str] = set()
        peak = 0
        for event in self.sorted_events():
            if event.action == "fail":
                down.add(event.machine)
            else:
                down.discard(event.machine)
            peak = max(peak, len(down))
        return peak

    def without(self, index: int) -> "FaultSchedule":
        """A copy with the ``index``-th event dropped (shrinking aid)."""
        return FaultSchedule([e for i, e in enumerate(self.events) if i != index])

    def describe(self) -> str:
        """One-line human-readable form, used in chaos failure reports."""
        if not self.events:
            return "(no faults)"
        return ", ".join(
            f"{e.action} {e.machine}@{e.when:.2f}s" for e in self.sorted_events()
        )

    def arm(self, engine: Engine, cluster: Cluster) -> None:
        """Install one driver process per event on the engine.

        Events naming machines the cluster does not have fail fast here,
        rather than as a mystery ``ClusterError`` mid-simulation.
        """
        for event in self.events:
            cluster[event.machine]  # raises ClusterError on unknown names
        for event in self.sorted_events():
            engine.process(self._driver(engine, cluster, event), name=f"fault@{event.when}")

    @staticmethod
    def _driver(engine: Engine, cluster: Cluster, event: FaultEvent):
        yield engine.timeout(event.when)
        machine = cluster[event.machine]
        if event.action == "fail":
            machine.fail()
        else:
            machine.recover()
