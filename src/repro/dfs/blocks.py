"""Block-level metadata for the simulated distributed file system.

Files are split into fixed-size blocks (64 MB by default, matching the
paper's Hadoop configuration) and each block is replicated on several
machines.  A :class:`Split` is the scheduling view of a block — what the
MapReduce job tracker hands to a map task, with the replica locations used
for locality-aware placement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["Block", "Split", "DFSFile"]


@dataclass
class Block:
    """One replicated block of a DFS file.

    ``start``/``end`` delimit the record range of the parent file held by
    this block; ``nbytes`` is the framed size of those records.
    """

    index: int
    start: int
    end: int
    nbytes: int
    replicas: list[str] = field(default_factory=list)

    def record_count(self) -> int:
        return self.end - self.start


@dataclass(frozen=True, slots=True)
class Split:
    """The unit of map-task input: one block plus its locations."""

    path: str
    block_index: int
    start: int
    end: int
    nbytes: int
    locations: tuple[str, ...]

    def record_count(self) -> int:
        return self.end - self.start


@dataclass
class DFSFile:
    """A DFS file: the record payload plus its block layout.

    The simulator stores record payloads centrally (Python objects) while
    block metadata tracks *where* the bytes notionally live; reads charge
    disk/network time according to the reader's distance from a replica.
    """

    path: str
    records: list[tuple[Any, Any]]
    blocks: list[Block]
    text_format: bool = False

    @property
    def nbytes(self) -> int:
        return sum(block.nbytes for block in self.blocks)

    @property
    def num_records(self) -> int:
        return len(self.records)

    def block_records(self, index: int) -> list[tuple[Any, Any]]:
        block = self.blocks[index]
        return self.records[block.start : block.end]
