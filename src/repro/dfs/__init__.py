"""Simulated distributed file system (HDFS stand-in)."""

from .blocks import Block, DFSFile, Split
from .filesystem import DEFAULT_BLOCK_SIZE, DFS

__all__ = ["Block", "DFSFile", "Split", "DFS", "DEFAULT_BLOCK_SIZE"]
