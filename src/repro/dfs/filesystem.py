"""The simulated distributed file system (HDFS stand-in).

One :class:`DFS` instance plays both NameNode (namespace + block
placement) and the client API.  Data payloads are plain Python lists of
key/value records; every byte moved by a read or write is charged to the
cluster's disk and NIC pipes using the serialization size model, which is
what makes the baseline's per-iteration DFS load/dump expensive and
iMapReduce's one-time load cheap — the paper's first two optimisations.

Operations:

* :meth:`DFS.ingest` — place a file instantly (experiment setup; the paper
  also starts with input pre-loaded on HDFS).
* :meth:`DFS.write` — simulated-process helper: replica-chain write,
  charging network + disk time.
* :meth:`DFS.read_block` / :meth:`DFS.read_all` — locality-aware reads:
  a local replica costs one disk pass, a remote one costs network + disk.
* :meth:`DFS.splits` — the job tracker's scheduling view.
"""

from __future__ import annotations

from typing import Any, Generator, Iterable

from ..cluster import Cluster, Machine
from ..common.errors import (
    DFSError,
    FileAlreadyExists,
    FileNotFoundInDFS,
    WorkerFailure,
)
from ..common.partition import stable_hash
from ..common.serialization import sizeof_record, sizeof_text_line
from ..simulation import Event
from .blocks import Block, DFSFile, Split

__all__ = ["DFS", "DEFAULT_BLOCK_SIZE"]

#: 64 MB, the paper's Hadoop block size (§4.1).
DEFAULT_BLOCK_SIZE = 64 * 1024 * 1024


class DFS:
    """Namespace, block placement and byte-accounted I/O."""

    def __init__(
        self,
        cluster: Cluster,
        block_size: int = DEFAULT_BLOCK_SIZE,
        replication: int = 3,
    ):
        if block_size <= 0:
            raise DFSError(f"block size must be positive, got {block_size}")
        if replication < 1:
            raise DFSError(f"replication must be >= 1, got {replication}")
        self.cluster = cluster
        self.engine = cluster.engine
        self.block_size = block_size
        self.replication = min(replication, len(cluster))
        self._files: dict[str, DFSFile] = {}

    # -- namespace -----------------------------------------------------------
    def exists(self, path: str) -> bool:
        return path in self._files

    def list_files(self) -> list[str]:
        return sorted(self._files)

    def file_info(self, path: str) -> DFSFile:
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFoundInDFS(path) from None

    def delete(self, path: str) -> None:
        file = self._files.pop(path, None)
        if file is None:
            raise FileNotFoundInDFS(path)
        for block in file.blocks:
            for name in block.replicas:
                self.cluster[name].disk_delete(block.nbytes)

    def total_bytes(self) -> int:
        """Logical bytes (one copy) across all files."""
        return sum(f.nbytes for f in self._files.values())

    # -- layout --------------------------------------------------------------
    def _layout(
        self,
        path: str,
        records: list[tuple[Any, Any]],
        text_format: bool,
        preferred: str | None,
    ) -> DFSFile:
        sizeof = sizeof_text_line if text_format else sizeof_record
        blocks: list[Block] = []
        start = 0
        acc = 0
        for i, (k, v) in enumerate(records):
            acc += sizeof(k, v)
            if acc >= self.block_size:
                blocks.append(Block(len(blocks), start, i + 1, acc))
                start, acc = i + 1, 0
        if acc > 0 or not blocks:
            blocks.append(Block(len(blocks), start, len(records), acc))
        self._place(path, blocks, preferred)
        return DFSFile(path, records, blocks, text_format)

    def _place(self, path: str, blocks: list[Block], preferred: str | None) -> None:
        """Deterministic replica placement.

        First replica on the writer's machine when it is part of the
        cluster (HDFS behaviour), remaining replicas round-robin from a
        path-hash offset so placement is stable across runs.
        """
        names = [m.name for m in self.cluster.alive_workers()]
        if not names:
            raise DFSError("no alive machines to place blocks on")
        offset = stable_hash(path) % len(names)
        for block in blocks:
            targets: list[str] = []
            if preferred is not None and preferred in names:
                targets.append(preferred)
            cursor = (offset + block.index) % len(names)
            while len(targets) < self.replication and len(targets) < len(names):
                candidate = names[cursor]
                cursor = (cursor + 1) % len(names)
                if candidate not in targets:
                    targets.append(candidate)
            block.replicas = targets

    # -- writes --------------------------------------------------------------
    def ingest(
        self,
        path: str,
        records: Iterable[tuple[Any, Any]],
        *,
        text_format: bool = False,
        overwrite: bool = False,
    ) -> DFSFile:
        """Place a file with no simulated cost (experiment setup)."""
        if self.exists(path) and not overwrite:
            raise FileAlreadyExists(path)
        if self.exists(path):
            self.delete(path)
        file = self._layout(path, list(records), text_format, preferred=None)
        self._files[path] = file
        for block in file.blocks:
            for name in block.replicas:
                self.cluster[name].local_bytes += block.nbytes
        return file

    def write(
        self,
        path: str,
        records: Iterable[tuple[Any, Any]],
        writer: Machine | str,
        *,
        text_format: bool = False,
        overwrite: bool = False,
    ) -> Generator[Event, Any, DFSFile]:
        """Simulated-process helper: write with replica-chain cost.

        Bytes travel writer → replica₁ → replica₂ → … (each hop moves the
        whole block, as in HDFS pipelining) and land on each replica's
        disk.  Returns the created :class:`DFSFile`.
        """
        writer_machine = self.cluster[writer] if isinstance(writer, str) else writer
        if self.exists(path) and not overwrite:
            raise FileAlreadyExists(path)
        if self.exists(path):
            self.delete(path)
        file = self._layout(path, list(records), text_format, preferred=writer_machine.name)
        for block in file.blocks:
            holder = writer_machine
            landed: list[str] = []
            for name in block.replicas:
                replica = self.cluster[name]
                # Replica hops must land even through loss windows and
                # transient partitions: retried with backoff (identical
                # cost to a plain transfer on a clean network).  A replica
                # machine that dies mid-pipeline is dropped from the chain
                # (HDFS pipeline-recovery semantics) — the write succeeds
                # on the survivors and the next hop restarts from the last
                # holder that has the bytes.
                try:
                    yield from self.cluster.reliable_transfer(
                        holder, replica, block.nbytes,
                        description=f"dfs-write:{path}",
                    )
                    yield from replica.disk_write(block.nbytes)
                except WorkerFailure as failure:
                    if failure.worker != replica.name:
                        # Not the replica: the writer (or another machine)
                        # died — that is this process's own failure
                        # interrupt, which recovery must see.
                        raise
                    continue
                landed.append(name)
                holder = replica
            if not landed:
                raise DFSError(
                    f"{path}: every replica target of block {block.index} "
                    f"failed during the write (replicas={block.replicas})"
                )
            block.replicas = landed
        # Publish only after all replicas are durable (atomic rename).
        self._files[path] = file
        return file

    # -- reads ---------------------------------------------------------------
    def _pick_replica(self, block: Block, reader: Machine) -> Machine:
        alive = [name for name in block.replicas if not self.cluster[name].failed]
        if not alive:
            raise DFSError(
                f"all replicas of block {block.index} lost (replicas={block.replicas})"
            )
        if reader.name in alive:
            return reader
        # Closest == any alive replica; pick deterministically.
        return self.cluster[alive[0]]

    def read_block(
        self, path: str, block_index: int, reader: Machine | str
    ) -> Generator[Event, Any, list[tuple[Any, Any]]]:
        """Read one block to ``reader``; returns its records."""
        reader_machine = self.cluster[reader] if isinstance(reader, str) else reader
        file = self.file_info(path)
        try:
            block = file.blocks[block_index]
        except IndexError:
            raise DFSError(f"{path}: no block {block_index}") from None
        source = self._pick_replica(block, reader_machine)
        yield from source.disk_read(block.nbytes)
        if source is not reader_machine:
            yield from self.cluster.reliable_transfer(
                source, reader_machine, block.nbytes,
                description=f"dfs-read:{path}",
            )
        return file.block_records(block_index)

    def read_all(
        self, path: str, reader: Machine | str
    ) -> Generator[Event, Any, list[tuple[Any, Any]]]:
        """Read a whole file to ``reader``; returns all records."""
        file = self.file_info(path)
        records: list[tuple[Any, Any]] = []
        for block in file.blocks:
            chunk = yield from self.read_block(path, block.index, reader)
            records.extend(chunk)
        return records

    # -- scheduling view -----------------------------------------------------
    def splits(self, path: str) -> list[Split]:
        file = self.file_info(path)
        return [
            Split(
                path=path,
                block_index=block.index,
                start=block.start,
                end=block.end,
                nbytes=block.nbytes,
                locations=tuple(block.replicas),
            )
            for block in file.blocks
        ]
