"""repro — a reproduction of *iMapReduce: A Distributed Computing
Framework for Iterative Computation* (Zhang, Gao, Gao, Wang).

The package implements the paper's system — an iterative MapReduce
framework with persistent tasks, static/state data separation, and
asynchronous map execution — together with the Hadoop-like baseline it
is compared against, on a deterministic discrete-event-simulated
cluster.  See README.md for the quickstart and DESIGN.md for the
architecture map.

Top-level convenience re-exports cover the common user path (writing
and running an iterative job); subsystem internals live in their
subpackages (``repro.simulation``, ``repro.cluster``, ``repro.dfs``,
``repro.mapreduce``, ``repro.imapreduce``, ``repro.graph``,
``repro.data``, ``repro.algorithms``, ``repro.experiments``).
"""

from .cluster import (
    Cluster,
    FaultSchedule,
    Machine,
    ec2_cluster,
    heterogeneous_cluster,
    local_cluster,
)
from .common import IterKeys, JobConf
from .dfs import DFS
from .imapreduce import (
    AuxPhase,
    IMapReduceRuntime,
    IterativeJob,
    IterativeRunResult,
    LoadBalanceConfig,
    ParallelRunResult,
    Phase,
    run_local,
    run_parallel,
)
from .mapreduce import (
    CostModel,
    IterativeDriver,
    IterativeSpec,
    Job,
    MapReduceRuntime,
)
from .simulation import Engine

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "FaultSchedule",
    "Machine",
    "ec2_cluster",
    "heterogeneous_cluster",
    "local_cluster",
    "IterKeys",
    "JobConf",
    "DFS",
    "AuxPhase",
    "IMapReduceRuntime",
    "IterativeJob",
    "IterativeRunResult",
    "LoadBalanceConfig",
    "ParallelRunResult",
    "Phase",
    "run_local",
    "run_parallel",
    "CostModel",
    "IterativeDriver",
    "IterativeSpec",
    "Job",
    "MapReduceRuntime",
    "Engine",
    "__version__",
]
