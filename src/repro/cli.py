"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``datasets [sssp|pagerank]``
    Print the Table 1 / Table 2 dataset stand-ins (paper vs generated).

``list-figures``
    List every reproducible table/figure with the paper's claim.

``figure <name> …``
    Regenerate one or more figures (e.g. ``figure fig6 fig18``) and print
    the paper-style series and statistics.

``run <algorithm>``
    Run one workload on the simulated cluster and print the
    per-iteration breakdown.  Options: ``--dataset``, ``--engine``,
    ``--cluster``, ``--iterations``, ``--sync``, ``--combiner``; with
    ``--backend parallel`` also ``--checkpoint-every``, ``--spool-dir``
    and ``--kill-worker W@I[:stop]`` (fault injection + recovery).
    ``--mode sync|async`` switches to the accumulative (Maiter)
    formulation — delta-based rounds instead of full-state iterations —
    on any backend (sssp and pagerank only).

``report``
    Write EXPERIMENTS.md (optionally reusing ``--results-dir`` output
    saved by a benchmark run).

``chaos``
    Run a battery of seeded random chaos campaigns against the runtime
    and judge each with the differential/invariant oracles.  Options:
    ``--seed``, ``--campaigns``, ``--campaign-seed`` (replay one),
    ``--spec`` (replay a shrunk JSON spec), ``--workloads``,
    ``--no-shrink``, ``--inject-bug`` (harness self-test),
    ``--no-net-faults`` (crash-only campaigns), ``--parallel`` (+
    ``--parallel-start-method``, ``--recovery-log``), ``--verbose``.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="iMapReduce reproduction — datasets, figures and workloads",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_data = sub.add_parser("datasets", help="print Table 1/2 dataset stand-ins")
    p_data.add_argument("kind", nargs="?", choices=("sssp", "pagerank"), default=None)

    sub.add_parser("list-figures", help="list reproducible tables/figures")

    p_fig = sub.add_parser("figure", help="regenerate figures by name")
    p_fig.add_argument("names", nargs="+", help="e.g. fig6 fig18 table1")

    p_run = sub.add_parser("run", help="run one workload on the simulated cluster")
    p_run.add_argument("algorithm", choices=("sssp", "pagerank", "kmeans", "matrixpower"))
    p_run.add_argument("--dataset", default=None, help="dataset name (default per algorithm)")
    p_run.add_argument("--backend", choices=("simulated", "serial", "parallel"),
                       default="simulated",
                       help="simulated cluster (default), serial run_local, "
                            "or the real multiprocess run_parallel")
    p_run.add_argument("--workers", type=int, default=None,
                       help="worker processes for --backend parallel")
    p_run.add_argument("--pairs", type=int, default=8,
                       help="task pairs for the serial/parallel backends")
    p_run.add_argument("--mode", choices=("sync", "async"), default=None,
                       help="run the accumulative (Maiter) formulation "
                            "instead of the classic iterative job: 'sync' "
                            "drains every pending delta each round, 'async' "
                            "drains the highest-priority fraction first "
                            "(sssp and pagerank only)")
    p_run.add_argument("--engine", choices=("imapreduce", "mapreduce"), default="imapreduce")
    p_run.add_argument("--cluster", default="local", help="local | single | ec2-<n>")
    p_run.add_argument("--iterations", type=int, default=10)
    p_run.add_argument("--sync", action="store_true", help="synchronous maps (iMapReduce)")
    p_run.add_argument("--combiner", action="store_true")
    p_run.add_argument("--measure-distance", action="store_true",
                       help="arm per-iteration convergence measurement")
    p_run.add_argument("--seed", type=int, default=0,
                       help="seed for all stochastic run choices (0 = historical defaults)")
    p_run.add_argument("--checkpoint-every", type=int, default=None, metavar="N",
                       help="(--backend parallel) durable checkpoint every N "
                            "iterations; arms recovery on worker death")
    p_run.add_argument("--spool-dir", default=None, metavar="DIR",
                       help="(--backend parallel) keep checkpoint spool files "
                            "in DIR instead of a temp dir")
    p_run.add_argument("--kill-worker", default=None, metavar="W@I[:stop]",
                       help="(--backend parallel) fault injection: SIGKILL "
                            "worker W at iteration I (':stop' sends SIGSTOP "
                            "and lets the heartbeat suspicion catch it)")
    p_run.add_argument("--memo-dir", default=None, metavar="DIR",
                       help="(--mode sync|async) memoize the converged "
                            "state in DIR; a later run with --delta "
                            "warm-starts from it (i2MapReduce mode)")
    p_run.add_argument("--delta", type=float, default=None, metavar="FRAC",
                       help="(--mode + --memo-dir) mutate FRAC of the "
                            "edges (seeded churn) and refresh "
                            "incrementally from the memoized state, "
                            "printing the warm-vs-cold comparison")
    p_run.add_argument("--delta-seed", type=int, default=0,
                       help="seed for the --delta churn draw (default 0)")

    p_rep = sub.add_parser("report", help="write EXPERIMENTS.md")
    p_rep.add_argument("--output", default="EXPERIMENTS.md")
    p_rep.add_argument("--results-dir", default=None,
                       help="reuse figure text saved by a benchmark run")

    p_chaos = sub.add_parser(
        "chaos", help="run seeded chaos campaigns with differential oracles"
    )
    p_chaos.add_argument("--seed", type=int, default=0,
                         help="master seed for the campaign battery")
    p_chaos.add_argument("--campaigns", type=int, default=20,
                         help="number of campaigns to run")
    p_chaos.add_argument("--campaign-seed", type=int, default=None,
                         help="replay one campaign by its seed")
    p_chaos.add_argument("--spec", default=None, metavar="JSON",
                         help="replay an exact campaign spec (JSON)")
    p_chaos.add_argument("--workloads", default=None,
                         help="comma-separated subset, e.g. sssp,pagerank")
    p_chaos.add_argument("--no-shrink", action="store_true",
                         help="skip shrinking failing campaigns")
    p_chaos.add_argument("--inject-bug", default=None,
                         choices=("skip-ckpt-write", "stale-ckpt",
                                  "ignore-hb-timeout", "skip-retransmit"),
                         help="deliberately break the runtime (self-test)")
    p_chaos.add_argument("--no-net-faults", action="store_true",
                         help="strip link faults (loss/delay/partitions) "
                              "from every campaign")
    p_chaos.add_argument("--parallel", action="store_true",
                         help="also run each campaign's workload on the real "
                              "multiprocess backend and demand record-for-"
                              "record equality with the serial reference")
    p_chaos.add_argument("--parallel-start-method", default=None,
                         choices=("fork", "spawn"),
                         help="pin the multiprocessing start method for "
                              "--parallel runs")
    p_chaos.add_argument("--recovery-log", default=None, metavar="PATH",
                         help="append one JSON line per recovered parallel "
                              "run (seeded proc kill, restored checkpoint, "
                              "resume point) — CI artifact")
    p_chaos.add_argument("--verbose", action="store_true",
                         help="log every campaign, not just failures")

    p_bench = sub.add_parser(
        "bench", help="wall-clock benchmark: run_local vs run_parallel"
    )
    p_bench.add_argument("--out", default="BENCH_PR10.json",
                         help="output JSON path (default BENCH_PR10.json)")
    p_bench.add_argument("--workers", default=None,
                         help="comma-separated worker counts, e.g. 1,2,4")
    p_bench.add_argument("--workloads", default=None, metavar="NAME,...",
                         help="run only the named workloads (e.g. "
                              "pagerank-kernel); unknown names list the "
                              "available set")
    p_bench.add_argument("--backend-only", default=None,
                         choices=("serial", "parallel"),
                         help="serial: skip the multiprocess backend; "
                              "parallel: time only the backend (the serial "
                              "reference still runs once for the identity "
                              "check)")
    p_bench.add_argument("--quick", action="store_true",
                         help="tiny problem sizes (CI smoke)")
    p_bench.add_argument("--profile", action="store_true",
                         help="print the phase-level profiler breakdown "
                              "(map/combine/kernel/serialize/send/wait/"
                              "reduce)")
    p_bench.add_argument("--check", default=None, metavar="BASELINE.json",
                         help="gate data-plane counters (records/batches/"
                              "bytes pickled) against a committed baseline; "
                              "exit 1 on any regression")
    p_bench.add_argument("--history", action="store_true",
                         help="print the benchmark trajectory across every "
                              "committed BENCH_PR*.json baseline and exit "
                              "(no suite run)")

    p_gc = sub.add_parser(
        "gc", help="prune stale checkpoint spools / memo versions"
    )
    p_gc.add_argument("--spool-dir", required=True, metavar="DIR",
                      help="checkpoint spool or --memo-dir directory")
    p_gc.add_argument("--keep", type=int, default=1,
                      help="committed manifests to retain (default 1)")
    return parser


_DEFAULT_DATASETS = {
    "sssp": "dblp",
    "pagerank": "google",
    "kmeans": "lastfm",
    "matrixpower": "matrix40",
}


def _cmd_datasets(args) -> int:
    from .data import dataset_table

    kinds = [args.kind] if args.kind else ["sssp", "pagerank"]
    for kind in kinds:
        table_no = 1 if kind == "sssp" else 2
        print(f"Table {table_no} ({kind}): paper -> stand-in")
        for row in dataset_table(kind):
            print(
                f"  {row['graph']:<12} paper {row['paper_nodes']:>10,} nodes /"
                f" {row['paper_edges']:>12,} edges ({row['paper_file_size']});"
                f"  stand-in {row['nodes']:>8,} / {row['edges']:>10,}"
                f" ({row['file_size_bytes'] / 1e6:.1f} MB)"
            )
    return 0


def _cmd_list_figures(args) -> int:
    from .experiments.figures import ALL_FIGURES
    from .experiments.report import PAPER_CLAIMS

    for name in ALL_FIGURES:
        print(f"  {name:<8} {PAPER_CLAIMS[name]}")
    return 0


def _cmd_figure(args) -> int:
    from .experiments.figures import ALL_FIGURES

    unknown = [n for n in args.names if n not in ALL_FIGURES]
    if unknown:
        print(f"unknown figure(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(ALL_FIGURES)}", file=sys.stderr)
        return 2
    for name in args.names:
        print(ALL_FIGURES[name]().format_text())
    return 0


def _cmd_run(args) -> int:
    from .experiments.workloads import RunSpec, execute
    from .metrics import format_run

    dataset = args.dataset or _DEFAULT_DATASETS[args.algorithm]
    if args.mode is not None:
        return _run_accum(args, dataset)
    if args.backend != "simulated":
        return _run_real_backend(args, dataset)
    spec = RunSpec(
        algorithm=args.algorithm,
        dataset=dataset,
        engine=args.engine,
        cluster=args.cluster,
        iterations=args.iterations,
        sync=args.sync,
        combiner=args.combiner,
        measure_distance=args.measure_distance,
        seed=args.seed,
    )
    metrics = execute(spec)
    print(format_run(metrics))
    return 0


def _run_accum(args, dataset: str) -> int:
    """``repro run --mode sync|async``: the accumulative (Maiter) path.

    Dispatches on ``--backend``: ``serial`` drives the pairs in-process,
    ``parallel`` runs the multiprocess mesh (round-synchronized delta
    exchange), and ``simulated`` adds seeded delivery deferral on top of
    the async scheduler (the chaos harness's backend).
    """
    import time

    from .experiments.wallclock import build_accum_backend_workload
    from .imapreduce import (
        run_accum_local,
        run_accum_parallel,
        run_accum_simulated,
    )

    try:
        job, deltas, static_map, num_pairs = build_accum_backend_workload(
            args.algorithm, dataset, num_pairs=args.pairs,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.checkpoint_every or args.spool_dir or args.kill_worker:
        print("--checkpoint-every/--spool-dir/--kill-worker do not apply "
              "to accumulative runs (deltas are in flight by design; "
              "worker death is terminal)", file=sys.stderr)
        return 2
    if args.delta is not None and args.memo_dir is None:
        print("--delta needs --memo-dir (the memoized state to "
              "warm-start from)", file=sys.stderr)
        return 2
    if args.memo_dir is not None:
        if args.algorithm not in ("sssp", "pagerank"):
            print("--memo-dir supports sssp and pagerank (graph "
                  "workloads with a static adjacency to mutate)",
                  file=sys.stderr)
            return 2
        if args.backend == "simulated":
            # The memoized path needs a real executor; the default
            # backend quietly upgrades to serial rather than erroring
            # (seeded delivery deferral has no warm-start story).
            args.backend = "serial"
        return _run_accum_memoized(
            args, dataset, job, deltas, static_map, num_pairs,
        )
    started = time.perf_counter()
    if args.backend == "serial":
        result = run_accum_local(
            job, deltas, static_map, num_pairs=num_pairs, mode=args.mode,
        )
        backend = f"serial ({num_pairs} pairs)"
    elif args.backend == "parallel":
        result = run_accum_parallel(
            job, deltas, static_map, num_pairs=num_pairs,
            num_workers=args.workers, mode=args.mode,
        )
        backend = f"parallel ({result.num_workers} workers, {num_pairs} pairs)"
    else:
        if args.mode != "async":
            print("--backend simulated only supports --mode async "
                  "(delivery deferral needs the async scheduler)",
                  file=sys.stderr)
            return 2
        result = run_accum_simulated(
            job, deltas, static_map, num_pairs=num_pairs, seed=args.seed,
        )
        backend = f"simulated ({num_pairs} pairs, seed {args.seed})"
    elapsed = time.perf_counter() - started
    print(
        f"{args.algorithm} on {dataset} [{backend}, accumulative "
        f"{args.mode}]: {result.rounds} rounds, terminated by "
        f"{result.terminated_by} (pending mass {result.pending_mass:.3g} "
        f"vs threshold {job.threshold:.3g}), {len(result.state)} records, "
        f"{elapsed:.2f}s wall"
    )
    print(
        f"  {result.updates_processed:,} updates, "
        f"{result.deltas_emitted:,} deltas emitted, "
        f"{result.deltas_shipped:,} shipped cross-pair"
    )
    return 0


def _run_accum_memoized(args, dataset, job, deltas, static_map,
                        num_pairs) -> int:
    """``repro run --mode ... --memo-dir``: the i2MapReduce path.

    Without ``--delta``, runs cold and memoizes the converged state.
    With ``--delta F``, synthesizes a seeded churn touching ~F of the
    edges, refreshes incrementally from the memo (warm start + change
    propagation), reruns cold on the mutated input for comparison, and
    memoizes the refreshed state so refreshes chain.
    """
    import time

    from .algorithms import pagerank
    from .imapreduce import (
        MemoStore,
        patch_static_table,
        random_edge_churn,
        run_accum_local,
        run_accum_parallel,
        run_incremental_accum,
    )
    from .imapreduce.incremental import ADJACENCY_KINDS, cold_initial_deltas

    plan_kwargs = (
        {"source": 0} if args.algorithm == "sssp"
        else {"damping": pagerank.DAMPING}
    )
    memo = MemoStore(args.memo_dir)

    def run_cold(initial, statics):
        if args.backend == "parallel":
            return run_accum_parallel(
                job, initial, statics, num_pairs=num_pairs,
                num_workers=args.workers, mode=args.mode,
            )
        return run_accum_local(
            job, initial, statics, num_pairs=num_pairs, mode=args.mode,
        )

    def memoize(state) -> int:
        return memo.save(
            state, job_name=job.name, num_pairs=num_pairs,
            partitioner=job.partitioner,
            meta={"algorithm": args.algorithm, "dataset": dataset,
                  **plan_kwargs},
        )

    if args.delta is None or not memo.has():
        if args.delta is not None:
            print(f"no memoized state under {args.memo_dir!r}; run once "
                  "without --delta first", file=sys.stderr)
            return 2
        started = time.perf_counter()
        result = run_cold(deltas, static_map)
        elapsed = time.perf_counter() - started
        version = memoize(result.state)
        print(
            f"{args.algorithm} on {dataset} [accumulative {args.mode}, "
            f"cold]: {result.rounds} rounds, "
            f"{result.updates_processed:,} updates, {elapsed:.2f}s wall"
        )
        print(f"  memoized {len(result.state)} records as version "
              f"{version} under {args.memo_dir}")
        return 0

    memo_records, meta = memo.load(job_name=job.name)
    if meta.get("algorithm") != args.algorithm:
        print(f"memo under {args.memo_dir!r} holds "
              f"{meta.get('algorithm')!r} state, not {args.algorithm!r}",
              file=sys.stderr)
        return 2
    table = dict(static_map[job.static_path])
    num_edges = sum(len(row) for row in table.values())
    churn = max(2, round(args.delta * num_edges))
    insert = churn // 2
    delete = churn - insert
    # Min-algebra serving workloads refresh fastest on improvement-only
    # churn (new/faster roads); pagerank takes arbitrary insert+delete.
    delta = random_edge_churn(
        table, args.algorithm, insert=insert, delete=delete,
        seed=args.delta_seed, monotone=args.algorithm == "sssp",
    )
    started = time.perf_counter()
    warm = run_incremental_accum(
        job, args.algorithm, delta, memo_records,
        {job.static_path: dict(table)}, num_pairs=num_pairs,
        mode=args.mode,
        backend="parallel" if args.backend == "parallel" else "local",
        **({"num_workers": args.workers}
           if args.backend == "parallel" else {}),
        **plan_kwargs,
    )
    warm_wall = time.perf_counter() - started
    mutated = dict(table)
    patch_static_table(mutated, delta, ADJACENCY_KINDS[args.algorithm])
    started = time.perf_counter()
    cold = run_cold(
        cold_initial_deltas(args.algorithm, mutated, **plan_kwargs),
        {job.static_path: mutated},
    )
    cold_wall = time.perf_counter() - started
    version = memoize(warm.state)
    frontier = warm.counters.get("incremental", {})
    max_diff = max(
        (abs(a[1] - b[1]) for a, b in zip(warm.state, cold.state)),
        default=0.0,
    )
    print(
        f"{args.algorithm} on {dataset} [accumulative {args.mode}, "
        f"incremental refresh]: delta {delta.size} edits "
        f"(~{args.delta:.2%} of {num_edges:,} edges, seed "
        f"{args.delta_seed})"
    )
    print(
        f"  warm: {warm.rounds} rounds, "
        f"{warm.updates_processed:,} updates, "
        f"{warm.deltas_shipped:,} shipped, {warm_wall:.2f}s "
        f"(frontier {frontier.get('frontier_keys', '?')} keys)"
    )
    print(
        f"  cold: {cold.rounds} rounds, "
        f"{cold.updates_processed:,} updates, "
        f"{cold.deltas_shipped:,} shipped, {cold_wall:.2f}s"
    )
    speedup = (cold.updates_processed / warm.updates_processed
               if warm.updates_processed else float("inf"))
    print(
        f"  {speedup:.1f}x fewer updates than cold rerun; states agree "
        f"to {max_diff:.3g}; memoized version {version}"
    )
    return 0


def _run_real_backend(args, dataset: str) -> int:
    """``repro run --backend serial|parallel``: real execution, real time."""
    import time

    from .experiments.wallclock import build_backend_workload
    from .imapreduce import run_local, run_parallel

    job, state, static_map, num_pairs = build_backend_workload(
        args.algorithm,
        dataset,
        iterations=args.iterations,
        num_pairs=args.pairs,
        combiner=args.combiner,
        seed=args.seed,
    )
    faults = None
    if args.kill_worker is not None:
        try:
            faults = (_parse_kill_worker(args.kill_worker),)
        except ValueError as exc:
            print(f"bad --kill-worker: {exc}", file=sys.stderr)
            return 2
    if (args.checkpoint_every or args.spool_dir or faults) and args.backend != "parallel":
        print("--checkpoint-every/--spool-dir/--kill-worker need "
              "--backend parallel", file=sys.stderr)
        return 2
    started = time.perf_counter()
    if args.backend == "serial":
        result = run_local(job, state, static_map, num_pairs=num_pairs)
        backend = f"serial ({num_pairs} pairs)"
    else:
        result = run_parallel(
            job, state, static_map, num_pairs=num_pairs,
            num_workers=args.workers,
            checkpoint_every=args.checkpoint_every,
            spool_dir=args.spool_dir,
            faults=faults,
        )
        backend = (
            f"parallel ({result.num_workers} workers, {num_pairs} pairs)"
        )
    elapsed = time.perf_counter() - started
    print(
        f"{args.algorithm} on {dataset} [{backend}]: "
        f"{result.iterations_run} iterations, terminated by "
        f"{result.terminated_by}, {len(result.state)} records, "
        f"{elapsed:.2f}s wall"
    )
    if args.backend == "parallel" and args.checkpoint_every:
        print(
            f"  checkpoints committed at iterations "
            f"{result.checkpoints or '[]'} "
            f"({result.counter('ckpt_writes')} spool writes, "
            f"{result.counter('ckpt_bytes'):,} bytes)"
        )
    if args.backend == "parallel" and result.recoveries:
        for event in result.recovery_events:
            print(
                f"  recovery #{event['generation']}: {event['reason']}; "
                f"restored checkpoint {event['restored_checkpoint']}, "
                f"resumed from iteration {event['resume_from']} "
                f"({event['mode']})"
            )
    return 0


def _parse_kill_worker(text: str):
    """``W@I`` or ``W@I:stop`` → :class:`ProcFault`."""
    from .imapreduce import ProcFault

    action = "kill"
    if ":" in text:
        text, action = text.split(":", 1)
        if action not in ("kill", "stop"):
            raise ValueError(f"action must be 'kill' or 'stop', not {action!r}")
    try:
        worker, iteration = text.split("@", 1)
        return ProcFault(worker=int(worker), iteration=int(iteration),
                         action=action)
    except ValueError:
        raise ValueError(f"expected W@I[:stop], got {text!r}") from None


def _cmd_bench(args) -> int:
    import json

    from .experiments.wallclock import (
        DEFAULT_WORKERS,
        available_workloads,
        compare_counters,
        format_history,
        format_phase_breakdown,
        load_history,
        run_suite,
    )

    if args.history:
        print(format_history(load_history()))
        return 0

    workers = DEFAULT_WORKERS
    if args.workers:
        try:
            workers = tuple(
                int(w) for w in args.workers.split(",") if w.strip()
            )
        except ValueError:
            print(f"bad --workers list: {args.workers!r}", file=sys.stderr)
            return 2
    workloads = None
    if args.workloads:
        workloads = [w.strip() for w in args.workloads.split(",") if w.strip()]
        unknown = [w for w in workloads if w not in available_workloads()]
        if unknown:
            print(f"unknown workload(s): {', '.join(unknown)}",
                  file=sys.stderr)
            print(f"available: {', '.join(available_workloads())}",
                  file=sys.stderr)
            return 2
    results = run_suite(
        out_path=args.out, workers=workers, quick=args.quick, log=print,
        workloads=workloads, backend_only=args.backend_only,
    )
    if args.profile:
        print(format_phase_breakdown(results))
    micro = results["sizeof_microbench"]
    print(
        f"sizeof_value memoization: {micro['speedup']}x over "
        f"{micro['calls']} calls"
    )
    ck = results.get("checkpoint_overhead")
    if ck is not None:
        print(
            f"checkpoint overhead ({ck['workload']}, every "
            f"{ck['checkpoint_every']} iters): {ck['overhead_pct']}% "
            f"wall, {ck['ckpt_writes']} spool writes, "
            f"{ck['ckpt_bytes']:,} bytes"
        )
    ac = results.get("async_convergence")
    if ac is not None:
        for row in ac["workloads"]:
            sync_m = row["modes"]["sync"]
            async_m = row["modes"]["async"]
            print(
                f"{row['name']}: async {async_m['rounds']} rounds / "
                f"{async_m['deltas_shipped']:,} deltas shipped vs sync "
                f"{sync_m['rounds']} / {sync_m['deltas_shipped']:,} "
                f"(states_match={row['states_match']})"
            )
    hot = results["hotpath_microbench"]
    print(
        f"group_by_key fast path: {hot['group_by_key']['speedup']}x; "
        f"combiner context reuse: {hot['combiner_context']['speedup']}x"
    )
    print(
        f"wrote {args.out} (cpu_count={results['meta']['cpu_count']})"
    )
    if args.check:
        try:
            with open(args.check) as fh:
                baseline = json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"cannot read baseline {args.check!r}: {exc}",
                  file=sys.stderr)
            return 2
        problems = compare_counters(results, baseline)
        if problems:
            print(f"data-plane counter regressions vs {args.check}:",
                  file=sys.stderr)
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
            return 1
        print(f"data-plane counters OK vs {args.check}")
    return 0


def _cmd_report(args) -> int:
    from .experiments.report import main as report_main

    report_main(args.output, args.results_dir)
    return 0


def _append_recovery_log(path: str, records: list[dict]) -> None:
    """Append recovery traces as JSONL (one campaign per line)."""
    import json

    with open(path, "a") as fh:
        for record in records:
            fh.write(json.dumps(record, default=str) + "\n")


_BUG_KNOBS = {
    "skip-ckpt-write": "skip_checkpoint_write",
    "stale-ckpt": "stale_checkpoint_content",
    "ignore-hb-timeout": "ignore_heartbeat_timeout",
    "skip-retransmit": "skip_retransmit",
}


def _cmd_chaos(args) -> int:
    from .imapreduce import ChaosKnobs
    from .testing import (
        WORKLOADS,
        CampaignSpec,
        generate_campaign,
        run_campaign,
        run_chaos,
    )

    knobs = None
    if args.inject_bug:
        knobs = ChaosKnobs(**{_BUG_KNOBS[args.inject_bug]: True})

    # Single-campaign replay modes.
    if args.spec is not None or args.campaign_seed is not None:
        try:
            if args.spec is not None:
                spec = CampaignSpec.from_json(args.spec)
                spec.validate()
            else:
                spec = generate_campaign(args.campaign_seed)
        except (ValueError, TypeError) as exc:
            print(f"bad campaign spec: {exc}", file=sys.stderr)
            return 2
        if args.no_net_faults:
            spec = spec.but(net_faults=())
        print(f"replaying: {spec.describe()}")
        outcome = run_campaign(
            spec, knobs, parallel=args.parallel,
            parallel_start_method=args.parallel_start_method,
        )
        par = outcome.parallel_result
        if args.recovery_log and par is not None and par.recoveries:
            _append_recovery_log(args.recovery_log, [{
                "campaign_seed": args.campaign_seed,
                "proc_kill": list(spec.proc_kill)
                if spec.proc_kill is not None else None,
                "recoveries": par.recoveries,
                "events": list(par.recovery_events),
            }])
        if outcome.ok:
            print(f"all oracles passed ({outcome.wall_seconds:.2f}s)")
            return 0
        for violation in outcome.violations:
            print(f"  {violation}")
        return 1

    workloads = WORKLOADS
    if args.workloads:
        workloads = tuple(w.strip() for w in args.workloads.split(",") if w.strip())
        unknown = [w for w in workloads if w not in WORKLOADS]
        if unknown:
            print(f"unknown workload(s): {', '.join(unknown)}", file=sys.stderr)
            print(f"known: {', '.join(WORKLOADS)}", file=sys.stderr)
            return 2

    log = print if args.verbose else None
    report = run_chaos(
        args.seed,
        args.campaigns,
        workloads=workloads,
        knobs=knobs,
        shrink_failures=not args.no_shrink,
        strip_net_faults=args.no_net_faults,
        parallel=args.parallel,
        parallel_start_method=args.parallel_start_method,
        log=log,
    )
    if args.recovery_log and report.recovery_events:
        _append_recovery_log(args.recovery_log, report.recovery_events)
    print(
        f"chaos: seed={report.master_seed} campaigns={report.campaigns} "
        f"passed={report.passed} failed={len(report.failures)} "
        f"recovered={len(report.recovery_events)} "
        f"({report.wall_seconds:.1f}s)"
    )
    for failure in report.failures:
        print(f"\ncampaign seed {failure.campaign_seed} FAILED:")
        print(f"  spec: {failure.spec.describe()}")
        for violation in failure.violations:
            print(f"  {violation}")
        if failure.shrunk is not None and failure.shrunk != failure.spec:
            print(
                f"  shrunk ({failure.shrink_attempts} attempts): "
                f"{failure.shrunk.describe()}"
            )
        print("  replay with:")
        for line in failure.replay_lines(args.inject_bug):
            print(f"    {line}")
    return 0 if report.ok else 1


def _cmd_gc(args) -> int:
    """``repro gc``: retention pass over a spool / memo directory."""
    import os

    from .imapreduce.checkpoint import CheckpointStore

    if args.keep < 1:
        print("--keep must be >= 1", file=sys.stderr)
        return 2
    if not os.path.isdir(args.spool_dir):
        print(f"no such directory: {args.spool_dir}", file=sys.stderr)
        return 2
    stats = CheckpointStore(args.spool_dir).gc(keep=args.keep)
    print(
        f"gc {args.spool_dir}: kept {stats['kept_manifests']} "
        f"manifest(s), pruned {stats['pruned_manifests']} manifest(s) "
        f"+ {stats['pruned_files']} spool file(s) "
        f"({stats['pruned_bytes']:,} bytes reclaimed)"
    )
    return 0


_COMMANDS = {
    "datasets": _cmd_datasets,
    "list-figures": _cmd_list_figures,
    "figure": _cmd_figure,
    "run": _cmd_run,
    "report": _cmd_report,
    "chaos": _cmd_chaos,
    "bench": _cmd_bench,
    "gc": _cmd_gc,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
